//! The paper's evaluation criteria.

use serde::{Deserialize, Serialize};

/// Aggregated outcome of one estimation method at one threshold over a
/// query workload (one row of a paper table).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// The threshold `T`.
    pub threshold: f64,
    /// `U`: number of queries whose *true* NoDoc is at least 1.
    pub u: u64,
    /// Queries with true NoDoc >= 1 whose estimated (rounded) NoDoc is
    /// also >= 1.
    pub matches: u64,
    /// Queries with true NoDoc == 0 whose estimated NoDoc is >= 1.
    pub mismatches: u64,
    /// Sum over the `U` queries of |true − estimated(rounded)| NoDoc
    /// (divide by `u` for the paper's d-N).
    pub sum_dn: f64,
    /// Sum over the `U` queries of |true − estimated| AvgSim.
    pub sum_ds: f64,
}

impl ThresholdRow {
    /// Folds one query's outcome into the row.
    pub fn record(
        &mut self,
        true_no_doc: u64,
        true_avg_sim: f64,
        est_no_doc: u64,
        est_avg_sim: f64,
    ) {
        if true_no_doc >= 1 {
            self.u += 1;
            if est_no_doc >= 1 {
                self.matches += 1;
            }
            self.sum_dn += (true_no_doc as f64 - est_no_doc as f64).abs();
            self.sum_ds += (true_avg_sim - est_avg_sim).abs();
        } else if est_no_doc >= 1 {
            self.mismatches += 1;
        }
    }

    /// Merges another partial row (parallel reduction).
    pub fn merge(&mut self, other: &ThresholdRow) {
        self.u += other.u;
        self.matches += other.matches;
        self.mismatches += other.mismatches;
        self.sum_dn += other.sum_dn;
        self.sum_ds += other.sum_ds;
    }

    /// The paper's d-N: mean |true − estimated| NoDoc over the `U`
    /// queries.
    pub fn d_n(&self) -> f64 {
        if self.u == 0 {
            0.0
        } else {
            self.sum_dn / self.u as f64
        }
    }

    /// The paper's d-S: mean |true − estimated| AvgSim over the `U`
    /// queries.
    pub fn d_s(&self) -> f64 {
        if self.u == 0 {
            0.0
        } else {
            self.sum_ds / self.u as f64
        }
    }

    /// Match rate `matches / U` (1.0 is perfect identification).
    pub fn match_rate(&self) -> f64 {
        if self.u == 0 {
            0.0
        } else {
            self.matches as f64 / self.u as f64
        }
    }
}

/// All threshold rows of one method on one database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name (e.g. "subrange").
    pub method: String,
    /// One row per threshold, in sweep order.
    pub rows: Vec<ThresholdRow>,
}

impl MethodResult {
    /// CSV header matching [`MethodResult::to_csv`].
    pub const CSV_HEADER: &'static str = "method,threshold,u,matches,mismatches,d_n,d_s";

    /// Renders the rows as CSV lines (no header; see
    /// [`MethodResult::CSV_HEADER`]) for plotting outside the crate.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.2},{},{},{},{:.6},{:.6}\n",
                self.method,
                r.threshold,
                r.u,
                r.matches,
                r.mismatches,
                r.d_n(),
                r.d_s()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_queries() {
        let mut r = ThresholdRow {
            threshold: 0.1,
            ..Default::default()
        };
        r.record(3, 0.5, 2, 0.4); // match, dn 1, ds 0.1
        r.record(1, 0.3, 0, 0.0); // miss (counted in U, not matched)
        r.record(0, 0.0, 2, 0.2); // mismatch
        r.record(0, 0.0, 0, 0.0); // true negative
        assert_eq!(r.u, 2);
        assert_eq!(r.matches, 1);
        assert_eq!(r.mismatches, 1);
        assert!((r.d_n() - (1.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((r.d_s() - (0.1 + 0.3) / 2.0).abs() < 1e-12);
        assert!((r.match_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = ThresholdRow::default();
        a.record(1, 0.2, 1, 0.2);
        let mut b = ThresholdRow::default();
        b.record(0, 0.0, 1, 0.1);
        b.record(2, 0.4, 2, 0.35);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.u, 2);
        assert_eq!(merged.matches, 2);
        assert_eq!(merged.mismatches, 1);
    }

    #[test]
    fn empty_row_rates_are_zero() {
        let r = ThresholdRow::default();
        assert_eq!(r.d_n(), 0.0);
        assert_eq!(r.d_s(), 0.0);
        assert_eq!(r.match_rate(), 0.0);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut row = ThresholdRow {
            threshold: 0.1,
            ..Default::default()
        };
        row.record(3, 0.5, 2, 0.4);
        let res = MethodResult {
            method: "subrange".into(),
            rows: vec![row],
        };
        let csv = res.to_csv();
        assert_eq!(csv.lines().count(), 1);
        let fields: Vec<&str> = csv.trim().split(',').collect();
        assert_eq!(
            fields.len(),
            MethodResult::CSV_HEADER.split(',').count(),
            "{csv}"
        );
        assert_eq!(fields[0], "subrange");
        assert_eq!(fields[2], "1"); // u
        assert_eq!(fields[3], "1"); // matches
    }
}
