//! Experiment drivers — one per paper table (or table group) plus the
//! ablations called out in DESIGN.md.

use crate::metrics::MethodResult;
use crate::runner::{evaluate, query_from_tokens, EvalConfig};
use crate::tables::{render_dn_ds_table, render_match_table, render_side_by_side};
use seu_core::guarantee::{ideal_databases, selected_databases};
use seu_core::{
    DisjointEstimator, Expansion, HighCorrelationEstimator, PrevMethodEstimator, SubrangeEstimator,
    UsefulnessEstimator,
};
use seu_corpus::{scalability_collections, PaperDatasets};
use seu_engine::Collection;
use seu_repr::{MaxWeightMode, QuantizedRepresentative, Representative, SubrangeScheme};

/// Output of one experiment: the rendered text plus the structured
/// per-database results (empty for analytic experiments).
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Human-readable tables, ready to print.
    pub text: String,
    /// `(database name, per-method results)`.
    pub results: Vec<(String, Vec<MethodResult>)>,
}

fn databases(ds: &PaperDatasets) -> [(&'static str, &Collection); 3] {
    [("D1", &ds.d1), ("D2", &ds.d2), ("D3", &ds.d3)]
}

/// Tables 1–6: high-correlation vs previous method vs subrange method on
/// D1–D3, full-precision quadruplet representatives.
pub fn run_main_tables(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let high = HighCorrelationEstimator::new();
    let prev = PrevMethodEstimator::new();
    let sub = SubrangeEstimator::paper_six_subrange();
    let methods: [&(dyn UsefulnessEstimator + Sync); 3] = [&high, &prev, &sub];

    let mut text = String::new();
    let mut results = Vec::new();
    for (i, (name, coll)) in databases(ds).into_iter().enumerate() {
        let repr = Representative::build(coll);
        let res = evaluate(coll, &repr, &ds.queries, &methods, config);
        text.push_str(&render_match_table(
            &format!(
                "Table {}: Comparison of Match/Mismatch Using {name}",
                2 * i + 1
            ),
            &res,
        ));
        text.push('\n');
        text.push_str(&render_dn_ds_table(
            &format!(
                "Table {}: Comparison of d-N and d-S Using {name}",
                2 * i + 2
            ),
            &res,
        ));
        text.push('\n');
        results.push((name.to_string(), res));
    }
    ExperimentOutput { text, results }
}

/// Tables 7–9: the subrange method with every representative number
/// quantized to one byte.
pub fn run_quantized_tables(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let sub = SubrangeEstimator::paper_six_subrange();
    let methods: [&(dyn UsefulnessEstimator + Sync); 1] = [&sub];
    let mut text = String::new();
    let mut results = Vec::new();
    for (i, (name, coll)) in databases(ds).into_iter().enumerate() {
        let repr =
            QuantizedRepresentative::from_representative(&Representative::build(coll)).decode();
        let res = evaluate(coll, &repr, &ds.queries, &methods, config);
        text.push_str(&render_side_by_side(
            &format!("Table {}: Using One Byte for Each Number for {name}", 7 + i),
            &res[0],
        ));
        text.push('\n');
        results.push((name.to_string(), res));
    }
    ExperimentOutput { text, results }
}

/// Tables 10–12: triplet representatives — the maximum normalized weight
/// is not stored but estimated as the 99.9 percentile of the normal fit.
pub fn run_triplet_tables(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let sub = SubrangeEstimator::paper_triplet();
    let methods: [&(dyn UsefulnessEstimator + Sync); 1] = [&sub];
    let mut text = String::new();
    let mut results = Vec::new();
    for (i, (name, coll)) in databases(ds).into_iter().enumerate() {
        let repr = Representative::build(coll);
        let res = evaluate(coll, &repr, &ds.queries, &methods, config);
        text.push_str(&render_side_by_side(
            &format!(
                "Table {}: Result for {name} When Maximum Weights Are Estimated",
                10 + i
            ),
            &res[0],
        ));
        text.push('\n');
        results.push((name.to_string(), res));
    }
    ExperimentOutput { text, results }
}

/// The §3.2 scalability table: representative size as a fraction of
/// collection size, for D1–D3 and three larger WSJ/FR/DOE-scale stand-ins.
pub fn run_scalability(ds: &PaperDatasets, seed: u64) -> ExperimentOutput {
    let mut text = String::new();
    text.push_str("Representative sizes (pages of 2 KB):\n");
    text.push_str(&format!(
        "{:<10} {:>9} {:>13} {:>10} {:>7} {:>10} {:>7}\n",
        "collection", "size", "#dist. terms", "rep. size", "%", "1B size", "%"
    ));
    let mut row = |name: &str, coll: &Collection| {
        let rep = Representative::build(coll).size_report();
        text.push_str(&format!(
            "{:<10} {:>9} {:>13} {:>10} {:>7.2} {:>10} {:>7.2}\n",
            name,
            rep.collection_pages,
            rep.distinct_terms,
            rep.representative_pages,
            rep.percent(),
            rep.quantized_pages,
            rep.quantized_percent()
        ));
    };
    for (name, coll) in databases(ds) {
        row(name, coll);
    }
    for (name, coll) in scalability_collections(seed) {
        row(name, &coll);
    }
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// The §3.1 single-term guarantee, checked empirically: over every
/// single-term query of the workload and every threshold, the subrange
/// method's selected database set must equal the ideal set.
pub fn run_guarantee(ds: &PaperDatasets, thresholds: &[f64]) -> ExperimentOutput {
    let reprs: Vec<Representative> = databases(ds)
        .iter()
        .map(|(_, c)| Representative::build(c))
        .collect();
    let refs: Vec<&Representative> = reprs.iter().collect();
    let est = SubrangeEstimator::paper_six_subrange();

    let mut checked = 0u64;
    let mut exact = 0u64;
    let mut violations = Vec::new();
    for tokens in ds.queries.iter().filter(|q| q.len() == 1) {
        // A single-term query names one term string; find its id in each
        // database (ids differ per collection, so check per database).
        for &t in thresholds {
            let mut selected = Vec::new();
            let mut ideal = Vec::new();
            for (i, (_, coll)) in databases(ds).iter().enumerate() {
                if let Some(term) = coll.vocab().get(&tokens[0]) {
                    if !selected_databases(&est, &[refs[i]], term, t).is_empty() {
                        selected.push(i);
                    }
                    if !ideal_databases(&[refs[i]], term, t).is_empty() {
                        ideal.push(i);
                    }
                }
            }
            checked += 1;
            if selected == ideal {
                exact += 1;
            } else if violations.len() < 5 {
                violations.push(format!(
                    "term {:?} T={t}: selected {selected:?} ideal {ideal:?}",
                    tokens[0]
                ));
            }
        }
    }
    let mut text = format!(
        "Single-term guarantee: {exact}/{checked} (query, threshold) pairs identified exactly\n"
    );
    for v in &violations {
        text.push_str(&format!("  VIOLATION: {v}\n"));
    }
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// Ablation: number of subranges and the effect of the singleton max
/// subrange, on D1.
pub fn run_ablation_subranges(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let variants: Vec<(String, SubrangeEstimator)> = vec![
        (
            "1 subrange (basic)".into(),
            SubrangeEstimator::new(
                SubrangeScheme::single(),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "2 equal, no max".into(),
            SubrangeEstimator::new(
                SubrangeScheme::equal(2, false),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "4 equal, no max".into(),
            SubrangeEstimator::new(
                SubrangeScheme::four_equal(),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "4 equal + max".into(),
            SubrangeEstimator::new(
                SubrangeScheme::equal(4, true),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        ("paper six".into(), SubrangeEstimator::paper_six_subrange()),
        (
            "8 equal + max".into(),
            SubrangeEstimator::new(
                SubrangeScheme::equal(8, true),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
    ];
    let repr = Representative::build(&ds.d1);
    let mut text = String::from("Ablation: subrange schemes on D1\n");
    let mut results = Vec::new();
    for (label, est) in &variants {
        let res = evaluate(
            &ds.d1,
            &repr,
            &ds.queries,
            &[est as &(dyn UsefulnessEstimator + Sync)],
            config,
        );
        text.push_str(&render_side_by_side(label, &res[0]));
        text.push('\n');
        results.push((label.clone(), res));
    }
    ExperimentOutput { text, results }
}

/// Ablation: the gGlOSS disjoint baseline the paper omits from its tables.
pub fn run_ablation_disjoint(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let high = HighCorrelationEstimator::new();
    let dis = DisjointEstimator::new();
    let methods: [&(dyn UsefulnessEstimator + Sync); 2] = [&high, &dis];
    let mut text = String::from("Ablation: disjoint vs high-correlation\n");
    let mut results = Vec::new();
    for (name, coll) in databases(ds) {
        let repr = Representative::build(coll);
        let res = evaluate(coll, &repr, &ds.queries, &methods, config);
        text.push_str(&render_match_table(
            &format!("{name}: match/mismatch"),
            &res,
        ));
        text.push('\n');
        results.push((name.to_string(), res));
    }
    ExperimentOutput { text, results }
}

/// Ablation: grid-convolution resolution vs the exact expansion, on D1.
pub fn run_ablation_grid(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    let variants: Vec<(String, SubrangeEstimator)> = [64usize, 256, 1024, 4096]
        .into_iter()
        .map(|cells| {
            (
                format!("grid {cells} cells"),
                SubrangeEstimator::new(
                    SubrangeScheme::paper_six(),
                    MaxWeightMode::Stored,
                    Expansion::Grid { cells },
                ),
            )
        })
        .chain(std::iter::once((
            "exact".to_string(),
            SubrangeEstimator::paper_six_subrange(),
        )))
        .collect();
    let repr = Representative::build(&ds.d1);
    let mut text = String::from("Ablation: expansion strategy on D1\n");
    let mut results = Vec::new();
    for (label, est) in &variants {
        let res = evaluate(
            &ds.d1,
            &repr,
            &ds.queries,
            &[est as &(dyn UsefulnessEstimator + Sync)],
            config,
        );
        text.push_str(&render_side_by_side(label, &res[0]));
        text.push('\n');
        results.push((label.clone(), res));
    }
    ExperimentOutput { text, results }
}

/// E11 — the paper's stated future work: ranking *many* databases. All 53
/// single-topic newsgroup databases are ranked per query by the subrange
/// method, the gGlOSS high-correlation baseline, CORI and a static
/// by-size baseline; quality is `R_n` recall of the truly useful
/// databases.
pub fn run_many_database_ranking(
    seed: u64,
    queries: &[Vec<String>],
    threshold: f64,
) -> ExperimentOutput {
    let fixture = crate::ranking::RankingFixture::new(seu_corpus::many_databases(seed, 220));
    let results = crate::ranking::rank_databases(&fixture, queries, threshold, &[1, 3, 5, 10]);
    let text = crate::ranking::render_ranking(
        &format!(
            "E11: ranking {} databases, {} queries, threshold {threshold}",
            fixture.len(),
            queries.len()
        ),
        &results,
    );
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// E12 — beyond the paper's ≤ 6-term workload: long queries (up to 12
/// terms), where the exact expansion grows exponentially and the dense
/// grid convolution is the scalable path. Reports accuracy *and* wall
/// time per expansion strategy on D1.
pub fn run_long_queries(ds: &PaperDatasets, seed: u64, config: &EvalConfig) -> ExperimentOutput {
    use seu_corpus::{QueryLogSpec, SyntheticCorpus};
    let corpus = SyntheticCorpus::standard();
    let long_queries = corpus.generate_query_log(&QueryLogSpec {
        n_queries: 1500,
        single_term_fraction: 0.05,
        max_terms: 12,
        on_topic_prob: 0.65,
        seed: seed ^ 0x10ac,
    });
    let repr = Representative::build(&ds.d1);
    let variants: Vec<(String, SubrangeEstimator)> = vec![
        ("exact".into(), SubrangeEstimator::paper_six_subrange()),
        (
            "grid 1024".into(),
            SubrangeEstimator::new(
                SubrangeScheme::paper_six(),
                MaxWeightMode::Stored,
                Expansion::Grid { cells: 1024 },
            ),
        ),
        (
            "grid 4096".into(),
            SubrangeEstimator::new(
                SubrangeScheme::paper_six(),
                MaxWeightMode::Stored,
                Expansion::Grid { cells: 4096 },
            ),
        ),
    ];
    let mut text = String::from("E12: long queries (<= 12 terms) on D1\n");
    let mut results = Vec::new();
    for (label, est) in &variants {
        let start = std::time::Instant::now();
        let res = evaluate(
            &ds.d1,
            &repr,
            &long_queries,
            &[est as &(dyn UsefulnessEstimator + Sync)],
            config,
        );
        let elapsed = start.elapsed();
        text.push_str(&render_side_by_side(
            &format!("{label} ({} ms total)", elapsed.as_millis()),
            &res[0],
        ));
        text.push('\n');
        results.push((label.clone(), res));
    }
    ExperimentOutput { text, results }
}

/// E13 — broker hierarchy ("the approach can be generalized to more than
/// two levels"): the 53 databases behind 8 regional brokers behind one
/// super-broker, vs one flat broker over all 53. Compares selection
/// quality against the engine-level oracle and the number of sites
/// contacted.
pub fn run_hierarchy(seed: u64, queries: &[Vec<String>], threshold: f64) -> ExperimentOutput {
    use seu_corpus::many_databases;
    use seu_metasearch::{Broker, SelectionPolicy, SuperBroker};
    use std::sync::Arc;

    let dbs = many_databases(seed, 220);
    let flat = Broker::new(SubrangeEstimator::paper_six_subrange());
    let superb = SuperBroker::new(SubrangeEstimator::paper_six_subrange());
    let group_of = |i: usize| i * 8 / dbs.len(); // 8 roughly equal groups
    let groups: Vec<Broker<SubrangeEstimator>> = (0..8)
        .map(|_| Broker::new(SubrangeEstimator::paper_six_subrange()))
        .collect();
    for (i, (name, coll)) in dbs.iter().enumerate() {
        flat.register(name, seu_engine::SearchEngine::new(coll.clone()));
        groups[group_of(i)].register(name, seu_engine::SearchEngine::new(coll.clone()));
    }
    for (g, broker) in groups.into_iter().enumerate() {
        superb.register_broker(&format!("region{g}"), Arc::new(broker));
    }

    let policy = SelectionPolicy::EstimatedUseful;
    // Estimations performed per architecture: the flat broker evaluates
    // every engine's representative for every query; the super-broker
    // evaluates 8 group summaries, then only the engines inside the
    // selected groups. Engine *searches* (the expensive hop) are counted
    // separately.
    let mut flat_estimations = 0usize;
    let mut two_estimations = 0usize;
    let mut flat_searches = 0usize;
    let mut two_searches = 0usize;
    let mut flat_recall_num = 0usize;
    let mut two_recall_num = 0usize;
    let mut useful_total = 0usize;
    for tokens in queries {
        let text = tokens.join(" ");
        let oracle: std::collections::HashSet<String> =
            flat.oracle_select(&text, threshold).into_iter().collect();
        let flat_sel: std::collections::HashSet<String> =
            flat.select(&text, threshold, policy).into_iter().collect();
        flat_estimations += dbs.len();
        flat_searches += flat_sel.len();

        let children = superb.select(&text, threshold, policy);
        two_estimations += superb.len();
        let mut two_sel: std::collections::HashSet<String> = Default::default();
        for name in &children {
            if let Some(broker) = superb.child(name) {
                two_estimations += broker.len();
                let engines = broker.select(&text, threshold, policy);
                two_searches += engines.len();
                two_sel.extend(engines);
            }
        }
        useful_total += oracle.len();
        flat_recall_num += oracle.intersection(&flat_sel).count();
        two_recall_num += oracle.intersection(&two_sel).count();
    }
    let text = format!(
        "E13: hierarchy over {} databases (8 regions), {} queries, threshold {threshold}\n\
         flat broker:      {} representative evaluations, {} engine searches, recall {:.3}\n\
         two-level broker: {} representative evaluations, {} engine searches, recall {:.3}\n\
         (oracle useful engine-hits: {})\n",
        dbs.len(),
        queries.len(),
        flat_estimations,
        flat_searches,
        ratio(flat_recall_num, useful_total),
        two_estimations,
        two_searches,
        ratio(two_recall_num, useful_total),
        useful_total,
    );
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// E16 — term dependence (the paper's \[14\] direction carried into the
/// subrange framework): multi-term queries on D1, plain subrange vs the
/// dependence-adjusted estimator with pairwise co-occurrence statistics.
/// The cluster structure of the synthetic corpus makes query terms
/// co-occur, which is exactly what the independence assumption misses.
pub fn run_dependence(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    use seu_core::DependenceAdjustedEstimator;
    use seu_repr::CooccurrenceStats;
    let repr = Representative::build(&ds.d1);
    let stats = CooccurrenceStats::build(&ds.d1, 200_000, 48);
    let (n_pairs, kib) = (stats.len(), stats.size_bytes() / 1024);
    let base = SubrangeEstimator::paper_six_subrange();
    let dep = DependenceAdjustedEstimator::new(base.clone(), stats);
    let multi: Vec<Vec<String>> = ds
        .queries
        .iter()
        .filter(|q| q.len() >= 2)
        .cloned()
        .collect();
    let res = evaluate(
        &ds.d1,
        &repr,
        &multi,
        &[
            &base as &(dyn UsefulnessEstimator + Sync),
            &dep as &(dyn UsefulnessEstimator + Sync),
        ],
        config,
    );
    let mut text = format!(
        "E16: term dependence on D1, {} multi-term queries \
         (co-occurrence side table: {n_pairs} pairs, {kib} KiB)\n",
        multi.len(),
    );
    text.push_str(&render_match_table("match/mismatch", &res));
    text.push('\n');
    text.push_str(&render_dn_ds_table("d-N and d-S", &res));
    ExperimentOutput {
        text,
        results: vec![("D1".to_string(), res)],
    }
}

/// E17 — the binary-vector information-loss claim (§2, reference \[18\]):
/// the binary-and-independent estimator vs the basic and subrange
/// methods on D1. Identical machinery; the only difference is what the
/// representative keeps about weights.
pub fn run_binary_baseline(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    use seu_core::BinaryIndependentEstimator;
    let repr = Representative::build(&ds.d1);
    let binary = BinaryIndependentEstimator::new();
    let basic = seu_core::BasicEstimator::new();
    let sub = SubrangeEstimator::paper_six_subrange();
    let methods: [&(dyn UsefulnessEstimator + Sync); 3] = [&binary, &basic, &sub];
    let res = evaluate(&ds.d1, &repr, &ds.queries, &methods, config);
    let mut text =
        String::from("E17: binary vectors (ref [18] of the paper) vs weighted estimation on D1\n");
    text.push_str(&render_match_table("match/mismatch", &res));
    text.push('\n');
    text.push_str(&render_dn_ds_table("d-N and d-S", &res));
    ExperimentOutput {
        text,
        results: vec![("D1".to_string(), res)],
    }
}

/// E20 — pricing the normal approximation: §3.1 approximates subrange
/// medians as `w + z(q) * sigma` "since it is expensive to find and to
/// store" the true ones. The exact-percentile estimator stores them
/// (4 bytes per median per term) and runs side by side with the normal
/// approximation on D1.
pub fn run_exact_percentiles(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    use seu_core::EmpiricalSubrangeEstimator;
    use seu_repr::PercentileRepresentative;
    let repr = Representative::build(&ds.d1);
    let table = PercentileRepresentative::build(&ds.d1, SubrangeScheme::paper_six());
    let extra_kib = table.size_bytes() / 1024;
    let normal = SubrangeEstimator::paper_six_subrange();
    let exact = EmpiricalSubrangeEstimator::new(table);
    let methods: [&(dyn UsefulnessEstimator + Sync); 2] = [&normal, &exact];
    let res = evaluate(&ds.d1, &repr, &ds.queries, &methods, config);
    let mut text = format!(
        "E20: normal-approximated vs exact subrange medians on D1 \
         (exact table costs {extra_kib} KiB extra)\n",
    );
    text.push_str(&render_match_table("match/mismatch", &res));
    text.push('\n');
    text.push_str(&render_dn_ds_table("d-N and d-S", &res));
    ExperimentOutput {
        text,
        results: vec![("D1".to_string(), res)],
    }
}

/// E19 — weighting-scheme robustness: §3.1 claims the single-term
/// argument "applies to other similarity functions such as \[16\]"
/// (pivoted normalization). D1's token stream is rebuilt under raw-tf
/// cosine, log-tf cosine, and pivoted log-tf; the subrange method and the
/// high-correlation baseline run under each, plus the single-term
/// identification check.
pub fn run_weighting_robustness(ds: &PaperDatasets, config: &EvalConfig) -> ExperimentOutput {
    use seu_corpus::{CollectionSpec, SyntheticCorpus};
    use seu_engine::{SearchEngine, WeightingScheme};
    let corpus = SyntheticCorpus::standard();
    let spec = CollectionSpec {
        name: "D1".into(),
        n_docs: 761,
        topics: vec![0],
        seed: 42 ^ 0xD1, // the standard D1' token stream
    };
    let schemes: [(&str, WeightingScheme); 3] = [
        ("cosine tf", WeightingScheme::CosineTf),
        ("cosine log-tf", WeightingScheme::CosineLogTf),
        (
            "pivoted log-tf (s=0.3)",
            WeightingScheme::PivotedLogTf { slope: 0.3 },
        ),
    ];
    let high = HighCorrelationEstimator::new();
    let sub = SubrangeEstimator::paper_six_subrange();
    let methods: [&(dyn UsefulnessEstimator + Sync); 2] = [&high, &sub];

    let mut text = String::from("E19: weighting-scheme robustness on D1\n");
    let mut results = Vec::new();
    for (label, scheme) in schemes {
        let coll = corpus.generate_collection_with(&spec, scheme);
        let repr = Representative::build(&coll);
        let res = evaluate(&coll, &repr, &ds.queries, &methods, config);
        text.push_str(&render_match_table(
            &format!("{label}: match/mismatch"),
            &res,
        ));

        // Single-term identification under this scheme.
        let engine = SearchEngine::new(coll.clone());
        let mut checked = 0u64;
        let mut exact = 0u64;
        for tokens in ds.queries.iter().filter(|q| q.len() == 1) {
            let q = query_from_tokens(&coll, tokens);
            if q.is_empty() {
                continue;
            }
            for &t in &config.thresholds {
                checked += 1;
                let predicted = sub.estimate(&repr, &q, t).no_doc > 0.0;
                let truly = engine.true_usefulness(&q, t).no_doc >= 1;
                if predicted == truly {
                    exact += 1;
                }
            }
        }
        text.push_str(&format!(
            "  single-term identification: {exact}/{checked} exact\n\n"
        ));
        results.push((label.to_string(), res));
    }
    ExperimentOutput { text, results }
}

/// E18 — selection-policy sweep at the broker: what each policy costs
/// (engines searched) and what it keeps (fraction of the broadcast's
/// result documents), over D1–D3.
pub fn run_policy_sweep(ds: &PaperDatasets, threshold: f64, n_queries: usize) -> ExperimentOutput {
    use seu_engine::SearchEngine;
    use seu_metasearch::{Broker, SearchRequest, SelectionPolicy};
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (name, coll) in databases(ds) {
        broker.register(name, SearchEngine::new(coll.clone()));
    }
    let policies: [(&str, SelectionPolicy); 5] = [
        ("all (broadcast)", SelectionPolicy::All),
        ("estimated-useful", SelectionPolicy::EstimatedUseful),
        ("top-1", SelectionPolicy::TopK(1)),
        ("top-2", SelectionPolicy::TopK(2)),
        ("min-nodoc-5", SelectionPolicy::MinNoDoc(5.0)),
    ];
    let queries: Vec<String> = ds
        .queries
        .iter()
        .take(n_queries)
        .map(|toks| toks.join(" "))
        .collect();

    // Broadcast results once, per query, through the request pipeline.
    let broadcast: Vec<Vec<seu_metasearch::MergedHit>> = queries
        .iter()
        .map(|q| {
            broker
                .execute(
                    &SearchRequest::new(q)
                        .threshold(threshold)
                        .policy(SelectionPolicy::All),
                )
                .hits
        })
        .collect();
    let total_hits: usize = broadcast.iter().map(Vec::len).sum();

    let mut text = format!(
        "E18: selection-policy sweep, {} queries at threshold {threshold} over 3 engines\n",
        queries.len()
    );
    text.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>12}\n",
        "policy", "searches", "hits kept", "kept %"
    ));
    for (label, policy) in policies {
        let mut searches = 0usize;
        let mut kept = 0usize;
        for (q, full) in queries.iter().zip(&broadcast) {
            let selected = broker.select(q, threshold, policy);
            searches += selected.len();
            if policy == SelectionPolicy::All {
                kept += full.len();
            } else {
                kept += full.iter().filter(|h| selected.contains(&h.engine)).count();
            }
        }
        text.push_str(&format!(
            "{label:<18} {searches:>10} {kept:>12} {:>11.1} %\n",
            100.0 * kept as f64 / total_hits.max(1) as f64
        ));
    }
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// E14 — selection quality at the broker: per threshold, precision and
/// recall of the "estimated useful" policy against the oracle over
/// D1–D3, plus the traffic saved vs broadcasting.
pub fn run_selection_quality(ds: &PaperDatasets, thresholds: &[f64]) -> ExperimentOutput {
    use seu_engine::SearchEngine;
    let engines: Vec<(&str, SearchEngine)> = databases(ds)
        .into_iter()
        .map(|(name, coll)| (name, SearchEngine::new(coll.clone())))
        .collect();
    let reprs: Vec<Representative> = databases(ds)
        .iter()
        .map(|(_, c)| Representative::build(c))
        .collect();
    let est = SubrangeEstimator::paper_six_subrange();

    let mut text = String::from("E14: selection quality of the estimated-useful policy (D1-D3)\n");
    text.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>10} {:>12}\n",
        "T", "precision", "recall", "selected", "of broadcast"
    ));
    for &t in thresholds {
        let mut tp = 0u64;
        let mut fp = 0u64;
        let mut fneg = 0u64;
        let mut selected = 0u64;
        for tokens in &ds.queries {
            for (i, (_, engine)) in engines.iter().enumerate() {
                let q = query_from_tokens(engine.collection(), tokens);
                if q.is_empty() {
                    continue;
                }
                let truly = engine.true_usefulness(&q, t).no_doc >= 1;
                let predicted = est.estimate(&reprs[i], &q, t).identifies_useful();
                if predicted {
                    selected += 1;
                    if truly {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                } else if truly {
                    fneg += 1;
                }
            }
        }
        let broadcast = (ds.queries.len() * engines.len()) as f64;
        text.push_str(&format!(
            "{t:>4.1} {:>10.3} {:>10.3} {:>10} {:>11.1} %\n",
            ratio(tp as usize, (tp + fp) as usize),
            ratio(tp as usize, (tp + fneg) as usize),
            selected,
            100.0 * selected as f64 / broadcast
        ));
    }
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// E15 — the gGlOSS bounds claim (Section 2 of the paper): "when the
/// measure of similarity sum is used, the estimates produced by the two
/// methods in gGlOSS form lower and upper bounds to the true similarity
/// sum" — and, per the paper, this does **not** carry over to the NoDoc
/// measure. Both claims are checked empirically over the workload.
pub fn run_gloss_bounds(ds: &PaperDatasets, thresholds: &[f64]) -> ExperimentOutput {
    use seu_engine::SearchEngine;
    let high = HighCorrelationEstimator::new();
    let dis = DisjointEstimator::new();
    let mut text = String::from("E15: gGlOSS similarity-sum bounds check\n");
    for (name, coll) in databases(ds) {
        let engine = SearchEngine::new(coll.clone());
        let repr = Representative::build(coll);
        let mut sum_checked = 0u64;
        let mut sum_bounded = 0u64;
        let mut nodoc_bounded = 0u64;
        let mut both_under = 0u64;
        for tokens in &ds.queries {
            let q = query_from_tokens(coll, tokens);
            if q.is_empty() {
                continue;
            }
            for &t in thresholds {
                let truth = engine.true_usefulness(&q, t);
                if truth.no_doc == 0 {
                    continue;
                }
                let true_sum = truth.no_doc as f64 * truth.avg_sim;
                let uh = high.estimate(&repr, &q, t);
                let ud = dis.estimate(&repr, &q, t);
                let hc_sum = uh.no_doc * uh.avg_sim;
                let dis_sum = ud.no_doc * ud.avg_sim;
                sum_checked += 1;
                // The bounds as proved under the gGlOSS model: the two
                // estimates bracket the truth (in either order).
                let (lo, hi) = if hc_sum <= dis_sum {
                    (hc_sum, dis_sum)
                } else {
                    (dis_sum, hc_sum)
                };
                if lo <= true_sum + 1e-9 && true_sum <= hi + 1e-9 {
                    sum_bounded += 1;
                }
                if true_sum > hi + 1e-9 {
                    both_under += 1;
                }
                let (nlo, nhi) = if uh.no_doc <= ud.no_doc {
                    (uh.no_doc, ud.no_doc)
                } else {
                    (ud.no_doc, uh.no_doc)
                };
                if nlo <= truth.no_doc as f64 + 1e-9 && (truth.no_doc as f64) <= nhi + 1e-9 {
                    nodoc_bounded += 1;
                }
            }
        }
        text.push_str(&format!(
            "{name}: sim-sum bracketed {sum_bounded}/{sum_checked} ({:.1} %), \
             NoDoc bracketed {nodoc_bounded}/{sum_checked} ({:.1} %), \
             truth above both {both_under}/{sum_checked} ({:.1} %)\n",
            100.0 * ratio(sum_bounded as usize, sum_checked as usize),
            100.0 * ratio(nodoc_bounded as usize, sum_checked as usize),
            100.0 * ratio(both_under as usize, sum_checked as usize),
        ));
    }
    text.push_str(
        "(reading: the gGlOSS lower/upper-bound theorem is internal to its \
         uniform-average-weight model — on heterogeneous weights both \
         estimates usually land on the same side of the truth, overwhelmingly \
         *below* it, which is why the paper finds them inaccurate and why \
         bracketing fails for NoDoc too)\n",
    );
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

/// Query-length diagnostics: how many workload queries reach each
/// database's vocabulary at all (context for interpreting U columns).
pub fn run_workload_diagnostics(ds: &PaperDatasets) -> ExperimentOutput {
    let mut text = String::from("Workload diagnostics\n");
    let single = ds.queries.iter().filter(|q| q.len() == 1).count();
    text.push_str(&format!(
        "queries: {} ({} single-term, {:.1} %)\n",
        ds.queries.len(),
        single,
        100.0 * single as f64 / ds.queries.len() as f64
    ));
    for (name, coll) in databases(ds) {
        let known = ds
            .queries
            .iter()
            .filter(|q| !query_from_tokens(coll, q).is_empty())
            .count();
        text.push_str(&format!(
            "{name}: {} docs, {} distinct terms, {}/{} queries with at least one known term\n",
            coll.len(),
            coll.vocab().len(),
            known,
            ds.queries.len()
        ));
        // How normal are the per-term weight distributions? The subrange
        // method's quantile medians assume skewness ~ 0; this is the
        // empirical check (terms in >= 8 docs, where skewness means
        // something).
        let mut acc: Vec<seu_stats::Moments> = vec![seu_stats::Moments::new(); coll.vocab().len()];
        for doc in coll.docs() {
            for &(term, w) in &doc.terms {
                acc[term.index()].push(w);
            }
        }
        let mut skews: Vec<f64> = acc
            .iter()
            .filter(|m| m.count() >= 8)
            .map(|m| m.skewness())
            .collect();
        if !skews.is_empty() {
            skews.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = seu_stats::percentile_linear(&skews, 0.5);
            let p90 = seu_stats::percentile_linear(&skews, 0.9);
            let heavy = skews.iter().filter(|s| s.abs() > 1.0).count();
            text.push_str(&format!(
                "    weight skewness over {} frequent terms: median {:.2}, p90 {:.2}, |skew|>1: {:.1} %\n",
                skews.len(),
                med,
                p90,
                100.0 * heavy as f64 / skews.len() as f64
            ));
        }
    }
    ExperimentOutput {
        text,
        results: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{Collection, CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    /// A miniature stand-in for the full PaperDatasets — three tiny
    /// topical collections and a handful of queries — so every driver
    /// gets an end-to-end smoke test without generating the real corpus.
    fn tiny_datasets() -> PaperDatasets {
        let mk = |docs: &[&str]| -> Collection {
            let mut b =
                CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
            for (i, d) in docs.iter().enumerate() {
                b.add_document(&format!("d{i}"), d);
            }
            b.build()
        };
        let d1 = mk(&[
            "databases indexes queries optimizer",
            "databases transactions logging",
            "databases storage pages buffers",
            "query plans and databases",
        ]);
        let d2 = mk(&[
            "soup recipes mushrooms cream",
            "bread baking sourdough rye",
            "databases of recipes and menus",
            "soup stock reduction",
            "bread crumb troubleshooting",
        ]);
        let d3 = mk(&[
            "orbital mechanics launch",
            "cheap propellant storage",
            "databases orbit catalogs",
            "soup dumplings steaming",
        ]);
        let mut queries: Vec<Vec<String>> = vec![
            vec!["databases".into()],
            vec!["soup".into()],
            vec!["databases".into(), "queries".into()],
            vec!["bread".into(), "baking".into()],
            vec!["orbital".into(), "launch".into()],
            vec!["unknownterm".into()],
            vec!["recipes".into(), "soup".into(), "bread".into()],
        ];
        // Repeat to give the metrics a little mass.
        let base = queries.clone();
        for _ in 0..3 {
            queries.extend(base.iter().cloned());
        }
        PaperDatasets {
            d1,
            d2,
            d3,
            queries,
        }
    }

    fn cfg() -> EvalConfig {
        EvalConfig {
            thresholds: vec![0.1, 0.3, 0.5],
            threads: 2,
        }
    }

    #[test]
    fn main_tables_smoke() {
        let ds = tiny_datasets();
        let out = run_main_tables(&ds, &cfg());
        assert_eq!(out.results.len(), 3);
        assert!(out.text.contains("Table 1"));
        assert!(out.text.contains("Table 6"));
        // Three methods per database, rows per threshold.
        for (_, res) in &out.results {
            assert_eq!(res.len(), 3);
            assert_eq!(res[0].rows.len(), 3);
        }
        // Subrange matches at least as much as high-correlation overall.
        let (_, d1) = &out.results[0];
        assert!(d1[2].rows[0].matches >= d1[0].rows[0].matches);
    }

    #[test]
    fn quantized_and_triplet_tables_smoke() {
        let ds = tiny_datasets();
        let q = run_quantized_tables(&ds, &cfg());
        assert!(q.text.contains("Table 7"));
        let t = run_triplet_tables(&ds, &cfg());
        assert!(t.text.contains("Table 12"));
    }

    #[test]
    fn guarantee_smoke_is_exact() {
        let ds = tiny_datasets();
        let out = run_guarantee(&ds, &[0.1, 0.3, 0.5, 0.7]);
        assert!(out.text.contains("identified exactly"));
        assert!(!out.text.contains("VIOLATION"), "{}", out.text);
    }

    #[test]
    fn ablations_smoke() {
        let ds = tiny_datasets();
        assert!(run_ablation_subranges(&ds, &cfg())
            .text
            .contains("paper six"));
        assert!(run_ablation_disjoint(&ds, &cfg()).text.contains("disjoint"));
        assert!(run_ablation_grid(&ds, &cfg()).text.contains("exact"));
    }

    #[test]
    fn diagnostics_smoke() {
        let ds = tiny_datasets();
        let out = run_workload_diagnostics(&ds);
        assert!(out.text.contains("queries: 28"));
        assert!(out.text.contains("D3"));
    }

    #[test]
    fn selection_quality_smoke() {
        let ds = tiny_datasets();
        let out = run_selection_quality(&ds, &[0.1, 0.3]);
        assert!(out.text.contains("precision"));
        // On these tiny, clean collections selection is accurate.
        assert!(out.text.contains("1.000"), "{}", out.text);
    }

    #[test]
    fn gloss_bounds_smoke() {
        let ds = tiny_datasets();
        let out = run_gloss_bounds(&ds, &[0.1, 0.3]);
        assert!(out.text.contains("sim-sum bracketed"));
        assert!(out.text.contains("D1"));
    }
}
