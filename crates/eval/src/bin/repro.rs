//! `repro` — regenerates every table of the paper from the synthetic
//! workload.
//!
//! ```text
//! cargo run -p seu-eval --release --bin repro -- [COMMAND] [--seed N]
//!
//! COMMANDS
//!   tables-1-6          match/mismatch + d-N/d-S for D1–D3 (default set)
//!   tables-7-9          one-byte quantized representatives
//!   tables-10-12        estimated (triplet) max weights
//!   scalability         §3.2 representative-size table
//!   guarantee           §3.1 single-term identification check
//!   ablation-subranges  subrange-count / max-subrange ablation
//!   ablation-disjoint   gGlOSS disjoint baseline
//!   ablation-grid       grid-convolution resolution ablation
//!   ranking             E11: 53-database ranking (subrange vs CORI vs ...)
//!   long-queries        E12: 12-term queries, exact vs grid expansion
//!   hierarchy           E13: flat vs two-level broker over 53 databases
//!   selection           E14: precision/recall of usefulness-based selection
//!   gloss-bounds        E15: the gGlOSS similarity-sum bounds claim, measured
//!   dependence          E16: pairwise term-dependence adjustment on D1
//!   binary              E17: binary-vector information loss (ref [18])
//!   policies            E18: selection-policy cost/recall sweep
//!   weighting           E19: robustness under log-tf / pivoted weighting
//!   exact-percentiles   E20: normal-approximated vs exact subrange medians
//!   diagnostics         workload sanity numbers
//!   bench-broker        timed broker workload -> BENCH_broker.json
//!   all                 everything above
//!
//! FLAGS
//!   --seed N            workload RNG seed (default 42)
//!   --csv DIR           dump per-database CSVs alongside the tables
//!   --bench-out PATH    where bench-broker writes its JSON report
//!   --docs-base N       bench-broker documents-per-database base (default 120)
//!   --queries N         bench-broker query count (default 400)
//!   --remote            bench-broker serves every database over loopback TCP
//!   --shards N          bench-broker registry shard count (default 1 = flat)
//!   --engines N         bench-broker adds large-registry phases over N tiny engines
//!   --store             bench-broker times store-backed registry rebuild vs restore
//!                       (registry_rebuild_secs / registry_restore_secs in the report)
//!   --trace-sample      bench-broker measures dispatch overhead of default trace sampling
//!   --zipf S            bench-broker adds Zipf(S) cache phases (hit rate + hot-query speedup)
//!   --no-cache          bench-broker runs the Zipf phases with the query cache disabled
//!   --federated         bench-broker adds two-tier federation phases: 256 clients through
//!                       a front-door over 1 replica vs --replicas replicas (one compute
//!                       worker each), reporting federated_rps and federated_speedup
//!   --replicas N        bench-broker federated cluster size (default 4)
//!   --concurrency LIST  bench-broker (remote) client-count axis, e.g. 1,16,256: multiplexed
//!                       pool vs thread-per-connection throughput at each count
//!   --stats             print a metrics snapshot after the run
//!   --metrics-out PATH  write the metrics snapshot as JSON
//! ```

use seu_eval::experiments::*;
use seu_eval::runner::EvalConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut seed = 42u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut docs_base = 120usize;
    let mut n_queries = 400usize;
    let mut remote = false;
    let mut shards = 1usize;
    let mut engines = 0usize;
    let mut trace_sample = false;
    let mut store = false;
    let mut zipf: Option<f64> = None;
    let mut no_cache = false;
    let mut federated = false;
    let mut replicas = 4usize;
    let mut concurrency: Vec<usize> = Vec::new();
    let mut stats = false;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                );
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--bench-out needs a path")),
                );
            }
            "--docs-base" => {
                i += 1;
                docs_base = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--docs-base needs an integer"));
            }
            "--queries" => {
                i += 1;
                n_queries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs an integer"));
            }
            "--remote" => remote = true,
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage("--shards needs a positive integer"));
            }
            "--engines" => {
                i += 1;
                engines = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--engines needs an integer"));
            }
            "--trace-sample" => trace_sample = true,
            "--store" => store = true,
            "--zipf" => {
                i += 1;
                zipf = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&s: &f64| s.is_finite() && s >= 0.0)
                        .unwrap_or_else(|| usage("--zipf needs a non-negative exponent")),
                );
            }
            "--no-cache" => no_cache = true,
            "--federated" => federated = true,
            "--replicas" => {
                i += 1;
                replicas = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage("--replicas needs a positive integer"));
            }
            "--concurrency" => {
                i += 1;
                concurrency = args
                    .get(i)
                    .map(|list| {
                        list.split(',')
                            .map(|n| {
                                n.trim()
                                    .parse()
                                    .ok()
                                    .filter(|&n: &usize| n > 0)
                                    .unwrap_or_else(|| {
                                        usage("--concurrency needs positive integers")
                                    })
                            })
                            .collect()
                    })
                    .unwrap_or_else(|| usage("--concurrency needs a comma-separated list"));
            }
            "--stats" => stats = true,
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--help" | "-h" => usage(""),
            cmd if !cmd.starts_with('-') => command = cmd.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            usage(&format!("cannot create {}: {e}", dir.display()));
        }
    }
    // Writes one CSV per (experiment, database) when --csv is given.
    let dump_csv = |tag: &str, out: &ExperimentOutput| {
        let Some(dir) = &csv_dir else { return };
        for (db, methods) in &out.results {
            let safe_db: String = db
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{tag}_{safe_db}.csv"));
            let mut body = String::from(seu_eval::MethodResult::CSV_HEADER);
            body.push('\n');
            for m in methods {
                body.push_str(&m.to_csv());
            }
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    };

    let run = |name: &str| command == name || command == "all";

    // The broker bench builds its own databases; run it before (and,
    // when it is the only command, instead of) dataset generation.
    if run("bench-broker") {
        eprintln!(
            "running broker bench (seed {seed}{}{}{}{})...",
            if remote { ", remote" } else { "" },
            if shards > 1 {
                format!(", {shards} shards")
            } else {
                String::new()
            },
            if engines > 0 {
                format!(", {engines} bulk engines")
            } else {
                String::new()
            },
            if store { ", store phases" } else { "" }
        );
        if federated {
            eprintln!("  federated phases: 1 vs {replicas} replicas");
        }
        let report = seu_eval::run_broker_bench_config(&seu_eval::BrokerBenchConfig {
            remote,
            shards,
            engines,
            trace_sample,
            zipf,
            no_cache,
            concurrency: concurrency.clone(),
            store,
            federated,
            replicas,
            ..seu_eval::BrokerBenchConfig::new(seed, docs_base, n_queries)
        });
        print!("{}", report.to_text());
        let path = bench_out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("BENCH_broker.json"));
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!();
        if command == "bench-broker" {
            emit_metrics(stats, metrics_out.as_deref());
            return;
        }
    }

    eprintln!("generating synthetic datasets (seed {seed})...");
    let ds = seu_corpus::paper_datasets(seed);
    let config = EvalConfig::default();

    let mut ran = false;
    if run("diagnostics") {
        print!("{}", run_workload_diagnostics(&ds).text);
        println!();
        ran = true;
    }
    if run("tables-1-6") {
        let out = run_main_tables(&ds, &config);
        print!("{}", out.text);
        dump_csv("tables_1_6", &out);
        ran = true;
    }
    if run("tables-7-9") {
        let out = run_quantized_tables(&ds, &config);
        print!("{}", out.text);
        dump_csv("tables_7_9", &out);
        ran = true;
    }
    if run("tables-10-12") {
        let out = run_triplet_tables(&ds, &config);
        print!("{}", out.text);
        dump_csv("tables_10_12", &out);
        ran = true;
    }
    if run("scalability") {
        print!("{}", run_scalability(&ds, seed).text);
        println!();
        ran = true;
    }
    if run("guarantee") {
        print!("{}", run_guarantee(&ds, &config.thresholds).text);
        println!();
        ran = true;
    }
    if run("ablation-subranges") {
        print!("{}", run_ablation_subranges(&ds, &config).text);
        ran = true;
    }
    if run("ablation-disjoint") {
        print!("{}", run_ablation_disjoint(&ds, &config).text);
        ran = true;
    }
    if run("ablation-grid") {
        print!("{}", run_ablation_grid(&ds, &config).text);
        ran = true;
    }
    if run("ranking") {
        let queries: Vec<Vec<String>> = ds.queries.iter().take(1500).cloned().collect();
        print!("{}", run_many_database_ranking(seed, &queries, 0.15).text);
        println!();
        ran = true;
    }
    if run("long-queries") {
        print!("{}", run_long_queries(&ds, seed, &config).text);
        ran = true;
    }
    if run("hierarchy") {
        let queries: Vec<Vec<String>> = ds.queries.iter().take(800).cloned().collect();
        print!("{}", run_hierarchy(seed, &queries, 0.15).text);
        println!();
        ran = true;
    }
    if run("selection") {
        print!("{}", run_selection_quality(&ds, &config.thresholds).text);
        println!();
        ran = true;
    }
    if run("gloss-bounds") {
        print!("{}", run_gloss_bounds(&ds, &config.thresholds).text);
        println!();
        ran = true;
    }
    if run("dependence") {
        print!("{}", run_dependence(&ds, &config).text);
        println!();
        ran = true;
    }
    if run("binary") {
        print!("{}", run_binary_baseline(&ds, &config).text);
        println!();
        ran = true;
    }
    if run("policies") {
        print!("{}", run_policy_sweep(&ds, 0.2, 1500).text);
        println!();
        ran = true;
    }
    if run("weighting") {
        print!("{}", run_weighting_robustness(&ds, &config).text);
        ran = true;
    }
    if run("exact-percentiles") {
        print!("{}", run_exact_percentiles(&ds, &config).text);
        println!();
        ran = true;
    }
    if !ran {
        usage(&format!("unknown command {command}"));
    }
    emit_metrics(stats, metrics_out.as_deref());
}

/// Honors `--stats` / `--metrics-out` after the experiments run.
fn emit_metrics(stats: bool, metrics_out: Option<&std::path::Path>) {
    if !stats && metrics_out.is_none() {
        return;
    }
    let snapshot = seu_obs::global().snapshot();
    if stats {
        print!("--- metrics ---\n{}", snapshot.to_text());
    }
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--csv DIR] [tables-1-6|tables-7-9|tables-10-12|scalability|guarantee|\
         ablation-subranges|ablation-disjoint|ablation-grid|ranking|long-queries|\
         hierarchy|selection|gloss-bounds|dependence|binary|policies|weighting|\
         exact-percentiles|diagnostics|bench-broker|all] [--seed N] \
         [--bench-out PATH] [--docs-base N] [--queries N] [--remote] [--shards N] \
         [--engines N] [--store] [--trace-sample] [--zipf S] [--no-cache] \
         [--federated] [--replicas N] [--concurrency N,N,...] [--stats] \
         [--metrics-out PATH]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
