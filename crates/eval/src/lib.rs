//! Evaluation harness for the reproduction.
//!
//! Implements the paper's three comparison criteria (Section 4) —
//! **match/mismatch**, **d-N** (mean |true − estimated| NoDoc) and **d-S**
//! (mean |true − estimated| AvgSim) — plus the experiment drivers that
//! regenerate every table:
//!
//! | Paper table | Driver |
//! |---|---|
//! | Tables 1–6 (three methods × D1–D3) | [`experiments::run_main_tables`] |
//! | Tables 7–9 (one-byte quantization) | [`experiments::run_quantized_tables`] |
//! | Tables 10–12 (estimated max weights) | [`experiments::run_triplet_tables`] |
//! | §3.2 representative-size table | [`experiments::run_scalability`] |
//! | §3.1 single-term guarantee (analytic) | [`experiments::run_guarantee`] |
//! | Ablations (subranges / disjoint / grid) | `experiments::run_ablation_*` |
//!
//! The `repro` binary exposes each driver as a subcommand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
pub mod metrics;
pub mod ranking;
pub mod runner;
pub mod tables;

pub use bench::{
    run_broker_bench, run_broker_bench_config, run_broker_bench_remote, BrokerBenchConfig,
    BrokerBenchReport, ConcurrencyPoint,
};
pub use metrics::{MethodResult, ThresholdRow};
pub use ranking::{rank_databases, RankingFixture, RankingResult};
pub use runner::{evaluate, EvalConfig};
pub use tables::{render_dn_ds_table, render_match_table, render_side_by_side};
