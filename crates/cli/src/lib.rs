//! Implementation of the `seu` command-line tool.
//!
//! The binary (`src/bin/seu.rs`) is a thin wrapper; everything testable
//! lives here: argument parsing, command dispatch, and the commands
//! themselves, which write their human-readable output to any
//! `io::Write` so tests can capture it.
//!
//! ```text
//! seu index <dir|mbox-file> -o engine.bin       build + persist an engine
//! seu repr engine.bin -o repr.bin [--quantize]  build + ship a representative
//! seu estimate repr.bin -q "query" [-t 0.2]     usefulness from metadata only
//! seu search engine.bin -q "query" [-t T|-k K]  search one engine
//! seu broker e1.bin e2.bin … -q "query" [-t T]  select + search + merge
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse, Command};

use std::io;

/// Runs a parsed command, writing human-readable output to `out`.
pub fn run(command: &Command, out: &mut dyn io::Write) -> Result<(), String> {
    match command {
        Command::Index {
            input,
            output,
            stem,
        } => commands::index(input, output, *stem, out),
        Command::Repr {
            engine,
            output,
            quantize,
        } => commands::repr(engine, output, *quantize, out),
        Command::Estimate {
            repr,
            query,
            threshold,
        } => commands::estimate(repr, query, *threshold, out),
        Command::Search {
            engine,
            query,
            threshold,
            top_k,
        } => commands::search(engine, query, *threshold, *top_k, out),
        Command::Broker {
            engines,
            query,
            threshold,
        } => commands::broker(engines, query, *threshold, out),
    }
}
