//! Implementation of the `seu` command-line tool.
//!
//! The binary (`src/bin/seu.rs`) is a thin wrapper; everything testable
//! lives here: argument parsing, command dispatch, and the commands
//! themselves, which write their human-readable output to any
//! `io::Write` so tests can capture it.
//!
//! ```text
//! seu index <dir|mbox-file> -o engine.bin       build + persist an engine
//! seu repr engine.bin -o repr.bin [--quantize]  build + ship a representative
//! seu estimate repr.bin -q "query" [-t 0.2]     usefulness from metadata only
//! seu search engine.bin -q "query" [-t T|-k K]  search one engine
//! seu broker e1.bin e2.bin … -q "query" [-t T]  select + search + merge
//! seu serve e1.bin … --listen addr [--remote h:p]…  networked broker + HTTP admin
//! seu serve … --join cluster.hosts              also join a federation as a replica
//! seu front-door --replica id=h:p … --listen addr   two-tier federation front-door
//! seu serve-engine e.bin --listen addr          serve one engine over TCP
//! seu refresh e1.bin … --repr-dir d [--stale-only]  re-ship representatives
//! seu snapshot e1.bin … --store reg/            persist a registry cut to a store
//! seu restore --store reg/ [-q "query"]         rebuild a registry from a store
//! ```
//!
//! `seu serve --store reg/` (with no engines or remotes) restores the
//! registry from the store at startup and serves it cold: entries come
//! up detached and hydrate lazily on the first plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse, Command, Invocation, ObsOptions};

use std::io;

/// Runs a parsed invocation: tracing flags are applied first (they
/// configure the process-global tracer the broker reports into), then
/// the command itself, then the observability flags (`--stats` prints a
/// snapshot, `--metrics-out` writes it as JSON). Metrics are emitted
/// even when the command fails, so a crash still leaves its counters
/// behind.
pub fn run(invocation: &Invocation, out: &mut dyn io::Write) -> Result<(), String> {
    configure_tracing(&invocation.obs)?;
    let result = run_command(&invocation.command, out);
    emit_metrics(&invocation.obs, out)?;
    result
}

/// Applies `--trace-sample`, `--slow-ms`, and `--trace-out` to the
/// process-global tracer. Unset flags leave the tracer's defaults
/// (sample 1-in-64, slow at 500ms, slow-query lines to stderr).
fn configure_tracing(obs: &ObsOptions) -> Result<(), String> {
    let tracer = seu_obs::tracer();
    if let Some(rate) = obs.trace_sample {
        tracer.set_sample_rate(rate);
    }
    if let Some(ms) = obs.slow_ms {
        tracer.set_slow_threshold(std::time::Duration::from_millis(ms));
    }
    if let Some(path) = &obs.trace_out {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        tracer.set_slow_log_file(Some(file));
    }
    Ok(())
}

fn emit_metrics(obs: &ObsOptions, out: &mut dyn io::Write) -> Result<(), String> {
    if !obs.stats && obs.metrics_out.is_none() {
        return Ok(());
    }
    // Eagerly register the core instrument families so every exposition
    // has a stable set of series (zero-valued when untouched) and
    // dashboards never see names flicker in and out across runs.
    seu_engine::search::register_metrics();
    seu_metasearch::broker::register_metrics();
    seu_core::subrange::register_metrics();
    seu_net::register_metrics();
    seu_metasearch::federation::register_metrics();
    let snapshot = seu_obs::global().snapshot();
    if obs.stats {
        write!(out, "--- metrics ---\n{}", snapshot.to_text())
            .map_err(|e| format!("writing metrics: {e}"))?;
    }
    if let Some(path) = &obs.metrics_out {
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Runs a parsed command, writing human-readable output to `out`.
pub fn run_command(command: &Command, out: &mut dyn io::Write) -> Result<(), String> {
    match command {
        Command::Index {
            input,
            output,
            stem,
        } => commands::index(input, output, *stem, out),
        Command::Repr {
            engine,
            output,
            quantize,
        } => commands::repr(engine, output, *quantize, out),
        Command::Estimate {
            repr,
            query,
            threshold,
        } => commands::estimate(repr, query, *threshold, out),
        Command::Search {
            engine,
            query,
            threshold,
            top_k,
        } => commands::search(engine, query, *threshold, *top_k, out),
        Command::Broker {
            engines,
            query,
            threshold,
            shards,
            no_cache,
        } => commands::broker(engines, query, *threshold, *shards, *no_cache, out),
        Command::Serve {
            engines,
            remotes,
            listen,
            store,
            shards,
            no_cache,
            join,
        } => commands::serve(
            engines,
            remotes,
            listen,
            store.as_deref(),
            *shards,
            *no_cache,
            join.as_deref(),
            out,
        ),
        Command::FrontDoor {
            replicas,
            hosts_file,
            engines,
            listen,
            vnodes,
            replication,
        } => commands::front_door(
            replicas,
            hosts_file.as_deref(),
            engines,
            listen,
            *vnodes,
            *replication,
            out,
        ),
        Command::ServeEngine {
            engine,
            listen,
            name,
            threaded,
            workers,
        } => {
            let config = seu_net::ServerConfig {
                mode: if *threaded {
                    seu_net::ServerMode::ThreadPerConnection
                } else {
                    seu_net::ServerMode::EventLoop
                },
                workers: *workers,
                ..seu_net::ServerConfig::default()
            };
            commands::serve_engine(engine, name.as_deref(), listen, config, out)
        }
        Command::Refresh {
            engines,
            repr_dir,
            stale_only,
        } => commands::refresh(engines, repr_dir, *stale_only, out),
        Command::Snapshot {
            engines,
            store,
            shards,
        } => commands::snapshot(engines, store, *shards, out),
        Command::Restore {
            store,
            query,
            threshold,
            shards,
            no_cache,
        } => commands::restore(store, query.as_deref(), *threshold, *shards, *no_cache, out),
    }
}
