//! The command implementations.

use seu_core::{SubrangeEstimator, UsefulnessEstimator};
use seu_corpus::loader;
use seu_engine::{Collection, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, SearchRequest, SelectionPolicy};
use seu_repr::{FrozenSummary, PortableRepresentative, QuantizedRepresentative};
use seu_text::{Analyzer, AnalyzerConfig};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

fn io_err(context: &str, e: impl std::fmt::Display) -> String {
    format!("{context}: {e}")
}

fn load_engine(path: &Path) -> Result<SearchEngine, String> {
    let bytes = fs::read(path).map_err(|e| io_err(&format!("reading {}", path.display()), e))?;
    let collection = Collection::from_bytes(&bytes[..])
        .ok_or_else(|| format!("{} is not a valid engine file", path.display()))?;
    Ok(SearchEngine::new(collection))
}

/// `seu index`: analyze a directory (one file per document) or an mbox
/// file into a persisted engine.
pub fn index(input: &Path, output: &Path, stem: bool, out: &mut dyn Write) -> Result<(), String> {
    let analyzer = Analyzer::new(AnalyzerConfig {
        remove_stopwords: true,
        stem,
    });
    let collection = if input.is_dir() {
        loader::load_directory(input, analyzer, WeightingScheme::CosineTf)
            .map_err(|e| io_err(&format!("loading {}", input.display()), e))?
    } else {
        let text = fs::read_to_string(input)
            .map_err(|e| io_err(&format!("reading {}", input.display()), e))?;
        let name = input
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "mbox".into());
        loader::load_mbox(&name, &text, analyzer, WeightingScheme::CosineTf)
    };
    let bytes = collection.to_bytes();
    fs::write(output, &bytes).map_err(|e| io_err(&format!("writing {}", output.display()), e))?;
    writeln!(
        out,
        "indexed {} documents, {} distinct terms -> {} ({} bytes)",
        collection.len(),
        collection.vocab().len(),
        output.display(),
        bytes.len()
    )
    .map_err(|e| io_err("writing output", e))
}

/// `seu repr`: build (optionally quantize) and persist a *portable*
/// (string-keyed) representative — self-contained, so `seu estimate`
/// needs nothing else.
pub fn repr(
    engine: &Path,
    output: &Path,
    quantize: bool,
    out: &mut dyn Write,
) -> Result<(), String> {
    let engine = load_engine(engine)?;
    let summary = PortableRepresentative::build(engine.collection()).freeze();
    let summary = if quantize {
        // Quantize the stats through the one-byte codec, keeping the
        // string-keyed vocabulary.
        let q = QuantizedRepresentative::from_representative(&summary.repr).decode();
        FrozenSummary {
            repr: q,
            vocab: summary.vocab,
        }
    } else {
        summary
    };
    let bytes = summary.to_bytes();
    fs::write(output, &bytes).map_err(|e| io_err(&format!("writing {}", output.display()), e))?;
    writeln!(
        out,
        "representative: {} terms over {} documents -> {} ({} bytes{})",
        summary.repr.distinct_terms(),
        summary.repr.n_docs(),
        output.display(),
        bytes.len(),
        if quantize { ", one-byte quantized" } else { "" }
    )
    .map_err(|e| io_err("writing output", e))
}

/// `seu estimate`: usefulness from a portable representative file alone
/// — no documents, no engine, just the broker-side metadata.
pub fn estimate(
    repr_path: &Path,
    query_text: &str,
    threshold: f64,
    out: &mut dyn Write,
) -> Result<(), String> {
    let bytes =
        fs::read(repr_path).map_err(|e| io_err(&format!("reading {}", repr_path.display()), e))?;
    let summary = FrozenSummary::from_bytes(&bytes[..])
        .ok_or_else(|| format!("{} is not a valid representative file", repr_path.display()))?;
    let tokens = Analyzer::paper_default().analyze(query_text);
    let query = summary.query_from_tokens(&tokens);
    let est = SubrangeEstimator::paper_six_subrange();
    let u = est.estimate(&summary.repr, &query, threshold);
    writeln!(
        out,
        "estimated NoDoc {:.2} (rounded {}), AvgSim {:.3} at threshold {threshold}",
        u.no_doc,
        u.no_doc_rounded(),
        u.avg_sim
    )
    .map_err(|e| io_err("writing output", e))
}

/// `seu search`: query one persisted engine.
pub fn search(
    engine: &Path,
    query_text: &str,
    threshold: f64,
    top_k: Option<usize>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let engine = load_engine(engine)?;
    let query = engine.collection().query_from_text(query_text);
    let hits = match top_k {
        Some(k) => engine.search_top_k_maxscore(&query, k),
        None => engine.search_threshold(&query, threshold),
    };
    writeln!(out, "{} hits", hits.len()).map_err(|e| io_err("writing output", e))?;
    for h in hits {
        writeln!(
            out,
            "{:<30} {:.4}",
            engine.collection().doc(h.doc).name,
            h.sim
        )
        .map_err(|e| io_err("writing output", e))?;
    }
    Ok(())
}

/// `seu broker`: register several engines, select by estimated
/// usefulness, search the selected ones, merge.
pub fn broker(
    engines: &[PathBuf],
    query_text: &str,
    threshold: f64,
    shards: usize,
    no_cache: bool,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut builder = Broker::builder(SubrangeEstimator::paper_six_subrange()).shards(shards);
    if no_cache {
        builder = builder.cache_bytes(0);
    }
    let broker = builder.build();
    for path in engines {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        broker.register(&name, load_engine(path)?);
    }
    // One pipeline execution serves estimates, selection, and hits (the
    // seed ran three passes — estimate_all, select, search — analyzing
    // the query six times over these two engines).
    let resp = broker.execute(
        &SearchRequest::new(query_text)
            .threshold(threshold)
            .policy(SelectionPolicy::EstimatedUseful)
            .with_estimates(true),
    );
    for e in &resp.estimates {
        writeln!(
            out,
            "{:<20} est NoDoc {:.2}  AvgSim {:.3}",
            e.engine, e.usefulness.no_doc, e.usefulness.avg_sim
        )
        .map_err(|e| io_err("writing output", e))?;
    }
    let selected = resp.selected();
    writeln!(out, "selected: {selected:?}").map_err(|e| io_err("writing output", e))?;
    for h in &resp.hits {
        writeln!(out, "{:<20} {:<30} {:.4}", h.engine, h.doc, h.sim)
            .map_err(|e| io_err("writing output", e))?;
    }
    Ok(())
}

fn file_stem(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Builds the networked broker for `seu serve` without blocking: local
/// engine files are registered in process, each `--remote` address is
/// registered over TCP with a push-invalidation subscription, and the
/// HTTP admin server starts on `listen`. With a `store`, every
/// registration writes through the persistent representative store —
/// and when no engines or remotes are given at all, the registry is
/// restored from the store's committed manifest instead (entries come
/// up detached and hydrate lazily on the first plan). Returns the
/// admin server and the live subscriptions (dropping either tears that
/// half down) so tests can drive a serve session in process.
fn build_serve_broker(
    engines: &[PathBuf],
    remotes: &[String],
    store: Option<&Path>,
    shards: usize,
    no_cache: bool,
) -> Result<
    (
        std::sync::Arc<Broker<SubrangeEstimator>>,
        Vec<seu_net::Subscription>,
    ),
    String,
> {
    let mut builder = Broker::builder(SubrangeEstimator::paper_six_subrange()).shards(shards);
    if no_cache {
        builder = builder.cache_bytes(0);
    }
    if let Some(dir) = store {
        builder = builder
            .store(dir)
            .map_err(|e| io_err(&format!("opening store {}", dir.display()), e))?;
    }
    let broker = std::sync::Arc::new(builder.build());
    for path in engines {
        broker.register(&file_stem(path), load_engine(path)?);
    }
    let mut subscriptions = Vec::new();
    for addr in remotes {
        let client = seu_net::RemoteEngine::new(addr.as_str())
            .map_err(|e| format!("remote engine {addr}: {e}"))?;
        let (_, subscription) = seu_net::register_and_subscribe(&broker, client)
            .map_err(|e| format!("registering remote engine {addr}: {e}"))?;
        subscriptions.push(subscription);
    }
    if store.is_some() && broker.is_empty() {
        broker
            .restore()
            .map_err(|e| io_err("restoring registry", e))?;
    }
    Ok((broker, subscriptions))
}

/// `seu serve` without the blocking park: builds the broker (local
/// engine files, remote registrations with push subscriptions,
/// optional store restore) and binds the HTTP admin server.
pub fn serve_start(
    engines: &[PathBuf],
    remotes: &[String],
    listen: &str,
    store: Option<&Path>,
    shards: usize,
    no_cache: bool,
) -> Result<(seu_net::AdminServer, Vec<seu_net::Subscription>), String> {
    let (broker, subscriptions) = build_serve_broker(engines, remotes, store, shards, no_cache)?;
    let admin = seu_net::AdminServer::bind(broker, listen)
        .map_err(|e| io_err(&format!("binding {listen}"), e))?;
    Ok((admin, subscriptions))
}

/// [`serve_start`] for a federation replica: also binds a
/// replica-protocol listener (ephemeral port on the admin host) and
/// announces `id endpoint` into the `join` hosts file, so a front-door
/// watching the file adopts this broker and rebalances engines onto it.
/// The replica's ring id is its endpoint.
#[allow(clippy::type_complexity)]
pub fn serve_join_start(
    engines: &[PathBuf],
    remotes: &[String],
    listen: &str,
    store: Option<&Path>,
    shards: usize,
    no_cache: bool,
    join: &Path,
) -> Result<
    (
        seu_net::AdminServer,
        seu_net::ReplicaServer,
        Vec<seu_net::Subscription>,
    ),
    String,
> {
    let (broker, subscriptions) = build_serve_broker(engines, remotes, store, shards, no_cache)?;
    let admin = seu_net::AdminServer::bind(broker.clone(), listen)
        .map_err(|e| io_err(&format!("binding {listen}"), e))?;
    let host = listen.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
    let replica = seu_net::ReplicaServer::bind("replica", broker, format!("{host}:0"))
        .map_err(|e| format!("binding replica listener on {host}:0: {e}"))?;
    let spec = seu_metasearch::federation::ReplicaSpec::from_endpoint(&replica.addr().to_string());
    seu_metasearch::federation::announce(join, &spec)
        .map_err(|e| io_err(&format!("announcing into {}", join.display()), e))?;
    Ok((admin, replica, subscriptions))
}

/// `seu serve`: run a networked broker until killed — local engines from
/// files, remote engines over TCP, admin/metrics over HTTP.
#[allow(clippy::too_many_arguments)]
pub fn serve(
    engines: &[PathBuf],
    remotes: &[String],
    listen: &str,
    store: Option<&Path>,
    shards: usize,
    no_cache: bool,
    join: Option<&Path>,
    out: &mut dyn Write,
) -> Result<(), String> {
    seu_net::register_metrics();
    let store_note = match store {
        Some(dir) => format!(", store {}", dir.display()),
        None => String::new(),
    };
    // Kept alive for the life of the process; the replica listener (if
    // joined) stops serving when this binding drops.
    let _running;
    let admin_addr;
    let join_note;
    match join {
        Some(hosts) => {
            seu_metasearch::federation::register_metrics();
            let (admin, replica, subs) =
                serve_join_start(engines, remotes, listen, store, shards, no_cache, hosts)?;
            admin_addr = admin.addr();
            join_note = format!(", replica {} joined {}", replica.addr(), hosts.display());
            _running = (admin, Some(replica), subs);
        }
        None => {
            let (admin, subs) = serve_start(engines, remotes, listen, store, shards, no_cache)?;
            admin_addr = admin.addr();
            join_note = String::new();
            _running = (admin, None, subs);
        }
    }
    writeln!(
        out,
        "broker: {} local, {} remote{store_note}{join_note}; admin listening on http://{admin_addr}",
        engines.len(),
        remotes.len(),
    )
    .and_then(|()| out.flush())
    .map_err(|e| io_err("writing output", e))?;
    park_forever()
}

/// Splits an `id=value` CLI spec; a bare value has no explicit id.
fn split_spec(spec: &str) -> (Option<&str>, &str) {
    match spec.split_once('=') {
        Some((id, value)) => (Some(id), value),
        None => (None, spec),
    }
}

/// Background upkeep for a running front-door: hosts-file watching and
/// replica health probes. Stops (and joins its thread) on drop.
pub struct FrontDoorRuntime {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for FrontDoorRuntime {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// `seu front-door` without the blocking park: builds the front-door,
/// adds static replicas, reads the hosts file (and keeps watching it),
/// registers engines through the placement ring, starts the probe
/// loop, and binds the HTTP admin server over the cluster.
pub fn front_door_start(
    replicas: &[String],
    hosts_file: Option<&Path>,
    engines: &[String],
    listen: &str,
    vnodes: usize,
    replication: usize,
) -> Result<
    (
        seu_net::AdminServer,
        std::sync::Arc<seu_metasearch::FrontDoor>,
        FrontDoorRuntime,
    ),
    String,
> {
    use seu_metasearch::federation::{EngineSource, FrontDoorConfig, HostsFileWatcher};
    use seu_metasearch::{FrontDoor, RemoteTransport};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let config = FrontDoorConfig {
        vnodes: if vnodes == 0 {
            seu_metasearch::federation::DEFAULT_VNODES
        } else {
            vnodes
        },
        replication,
        ..FrontDoorConfig::default()
    };
    let fd = Arc::new(FrontDoor::new(config));
    for spec in replicas {
        let (id, endpoint) = split_spec(spec);
        let id = id.unwrap_or(endpoint);
        let client = seu_net::RemoteReplica::new(endpoint)
            .map_err(|e| format!("replica {endpoint}: {e}"))?;
        fd.add_replica(id, Arc::new(client));
    }

    // The hosts file set is tracked separately from static replicas, so
    // a leave in the file never evicts a --replica flag.
    let mut watcher = hosts_file.map(HostsFileWatcher::new);
    let mut hosts_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    let adopt = |fd: &FrontDoor,
                 watcher: &mut HostsFileWatcher,
                 ids: &mut std::collections::HashSet<String>| {
        let Some(specs) = watcher.poll() else { return };
        let desired: std::collections::HashMap<String, String> =
            specs.into_iter().map(|s| (s.id, s.endpoint)).collect();
        for gone in ids
            .iter()
            .filter(|id| !desired.contains_key(*id))
            .cloned()
            .collect::<Vec<_>>()
        {
            fd.remove_replica(&gone);
            ids.remove(&gone);
        }
        let present: std::collections::HashSet<String> =
            fd.replica_states().into_iter().map(|(id, _)| id).collect();
        for (id, endpoint) in desired {
            if present.contains(&id) {
                ids.insert(id);
                continue;
            }
            if let Ok(client) = seu_net::RemoteReplica::new(endpoint.as_str()) {
                fd.add_replica(&id, Arc::new(client));
                ids.insert(id);
            }
        }
    };
    if let Some(w) = watcher.as_mut() {
        adopt(&fd, w, &mut hosts_ids);
    }
    if fd.replica_count() == 0 {
        return Err("no replicas: none given and none announced in the hosts file".into());
    }

    for spec in engines {
        let (name, endpoint) = split_spec(spec);
        let name = match name {
            Some(name) => name.to_string(),
            // A bare endpoint: dial the engine for its advertised name.
            None => {
                let probe = seu_net::RemoteEngine::new(endpoint)
                    .map_err(|e| format!("engine {endpoint}: {e}"))?;
                probe
                    .fetch_snapshot()
                    .map_err(|e| format!("engine {endpoint}: {e}"))?
                    .name
            }
        };
        fd.register_engine(
            &name,
            EngineSource::Remote {
                endpoint: endpoint.to_string(),
            },
        )
        .map_err(|e| format!("registering {name}: {e}"))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let fd_bg = Arc::clone(&fd);
    let thread = std::thread::Builder::new()
        .name("seu-front-door-upkeep".to_string())
        .spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(500));
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(w) = watcher.as_mut() {
                    adopt(&fd_bg, w, &mut hosts_ids);
                }
                fd_bg.probe_once();
            }
        })
        .map_err(|e| io_err("spawning front-door upkeep thread", e))?;
    let runtime = FrontDoorRuntime {
        stop,
        thread: Some(thread),
    };
    let admin = seu_net::AdminServer::bind(fd.clone(), listen)
        .map_err(|e| io_err(&format!("binding {listen}"), e))?;
    Ok((admin, fd, runtime))
}

/// `seu front-door`: run a two-tier federation front-door until killed —
/// consistent-hash placement over broker replicas, breaker failover,
/// admin/metrics over HTTP.
pub fn front_door(
    replicas: &[String],
    hosts_file: Option<&Path>,
    engines: &[String],
    listen: &str,
    vnodes: usize,
    replication: usize,
    out: &mut dyn Write,
) -> Result<(), String> {
    seu_net::register_metrics();
    seu_metasearch::federation::register_metrics();
    let (admin, fd, _runtime) =
        front_door_start(replicas, hosts_file, engines, listen, vnodes, replication)?;
    writeln!(
        out,
        "front-door: {} replicas, {} engines{}; admin listening on http://{}",
        fd.replica_count(),
        fd.len(),
        match hosts_file {
            Some(path) => format!(", watching {}", path.display()),
            None => String::new(),
        },
        admin.addr()
    )
    .and_then(|()| out.flush())
    .map_err(|e| io_err("writing output", e))?;
    park_forever()
}

/// `seu snapshot`: register engine files against a store-attached
/// broker (every representative is written through, one-byte
/// quantized) and commit a consistent registry cut — the manifest a
/// later `seu restore` or `seu serve --store` rebuilds from.
pub fn snapshot(
    engines: &[PathBuf],
    store: &Path,
    shards: usize,
    out: &mut dyn Write,
) -> Result<(), String> {
    let broker = Broker::builder(SubrangeEstimator::paper_six_subrange())
        .shards(shards)
        .store(store)
        .map_err(|e| io_err(&format!("opening store {}", store.display()), e))?
        .build();
    for path in engines {
        broker.register(&file_stem(path), load_engine(path)?);
    }
    let manifest = broker
        .snapshot_registry()
        .map_err(|e| io_err("committing snapshot", e))?;
    for e in &manifest.entries {
        writeln!(
            out,
            "{:<20} {:>8} terms  {:>10} stored bytes",
            e.name, e.repr_terms, e.repr_bytes
        )
        .map_err(|e| io_err("writing output", e))?;
    }
    writeln!(
        out,
        "snapshot: {} engines (epoch {}) -> {}",
        manifest.entries.len(),
        manifest.epoch,
        store.display()
    )
    .map_err(|e| io_err("writing output", e))
}

/// `seu restore`: rebuild a registry from a store's committed manifest
/// and report it. Entries come up detached — plannable but not
/// dispatchable — so with `-q` the command prints estimates (which
/// hydrate the representatives lazily), demonstrating the paper's
/// claim that selection needs only the broker-side metadata.
pub fn restore(
    store: &Path,
    query: Option<&str>,
    threshold: f64,
    shards: usize,
    no_cache: bool,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut builder = Broker::builder(SubrangeEstimator::paper_six_subrange())
        .shards(shards)
        .store(store)
        .map_err(|e| io_err(&format!("opening store {}", store.display()), e))?;
    if no_cache {
        builder = builder.cache_bytes(0);
    }
    let broker = builder.build();
    let n = broker
        .restore()
        .map_err(|e| io_err("restoring registry", e))?;
    writeln!(
        out,
        "restored {n} engines (epoch {}) from {}",
        broker.registry_epoch(),
        store.display()
    )
    .map_err(|e| io_err("writing output", e))?;
    for s in broker.engine_statuses() {
        writeln!(
            out,
            "{:<20} shard {}  epoch {}  {:>8} terms{}{}",
            s.name,
            s.shard,
            s.epoch,
            s.repr_terms,
            if s.detached { "  detached" } else { "" },
            match &s.endpoint {
                Some(e) => format!("  was {e}"),
                None => String::new(),
            }
        )
        .map_err(|e| io_err("writing output", e))?;
    }
    if let Some(query_text) = query {
        for e in broker.estimate_all(query_text, threshold) {
            writeln!(
                out,
                "{:<20} est NoDoc {:.2}  AvgSim {:.3}",
                e.engine, e.usefulness.no_doc, e.usefulness.avg_sim
            )
            .map_err(|e| io_err("writing output", e))?;
        }
    }
    Ok(())
}

/// Builds the engine server for `seu serve-engine` without blocking,
/// with the default (event-loop) scheduling.
pub fn serve_engine_start(
    engine_path: &Path,
    name: Option<&str>,
    listen: &str,
) -> Result<seu_net::EngineServer, String> {
    serve_engine_start_with(engine_path, name, listen, seu_net::ServerConfig::default())
}

/// [`serve_engine_start`] with explicit server scheduling.
pub fn serve_engine_start_with(
    engine_path: &Path,
    name: Option<&str>,
    listen: &str,
    config: seu_net::ServerConfig,
) -> Result<seu_net::EngineServer, String> {
    let name = name
        .map(str::to_string)
        .unwrap_or_else(|| file_stem(engine_path));
    seu_net::EngineServer::bind_with(name, load_engine(engine_path)?, listen, config)
        .map_err(|e| io_err(&format!("binding {listen}"), e))
}

/// `seu serve-engine`: serve one engine over the framed TCP protocol
/// until killed.
pub fn serve_engine(
    engine_path: &Path,
    name: Option<&str>,
    listen: &str,
    config: seu_net::ServerConfig,
    out: &mut dyn Write,
) -> Result<(), String> {
    seu_net::register_metrics();
    let server = serve_engine_start_with(engine_path, name, listen, config)?;
    writeln!(
        out,
        "engine {} listening on {} ({})",
        server.name(),
        server.addr(),
        match config.mode {
            seu_net::ServerMode::EventLoop => "event loop",
            seu_net::ServerMode::ThreadPerConnection => "thread per connection",
        }
    )
    .and_then(|()| out.flush())
    .map_err(|e| io_err("writing output", e))?;
    park_forever()
}

/// Blocks the main thread while server threads do the work; the process
/// exits via signal (there is no in-band shutdown command by design —
/// supervisors own serve lifetimes).
fn park_forever() -> Result<(), String> {
    loop {
        std::thread::park();
    }
}

/// `seu refresh`: the broker-side metadata-propagation sweep, as a
/// file-based workflow. For each engine file, rebuild its portable
/// representative into `<repr-dir>/<engine-stem>.repr`; with
/// `--stale-only`, skip engines whose existing representative still
/// matches the collection's document count and raw byte total (the same
/// weak check the broker applies to shipped representatives, since a
/// serialized summary carries no content hash).
pub fn refresh(
    engines: &[PathBuf],
    repr_dir: &Path,
    stale_only: bool,
    out: &mut dyn Write,
) -> Result<(), String> {
    fs::create_dir_all(repr_dir)
        .map_err(|e| io_err(&format!("creating {}", repr_dir.display()), e))?;
    let mut refreshed = 0usize;
    for path in engines {
        let engine = load_engine(path)?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let repr_path = repr_dir.join(format!("{stem}.repr"));
        if stale_only {
            let fresh = fs::read(&repr_path)
                .ok()
                .and_then(|bytes| FrozenSummary::from_bytes(&bytes[..]))
                .is_some_and(|summary| {
                    summary.repr.n_docs() == engine.collection().len() as u64
                        && summary.repr.collection_bytes() == engine.collection().raw_bytes()
                });
            if fresh {
                writeln!(out, "{stem}: up to date").map_err(|e| io_err("writing output", e))?;
                continue;
            }
        }
        let summary = PortableRepresentative::build(engine.collection()).freeze();
        let bytes = summary.to_bytes();
        fs::write(&repr_path, &bytes)
            .map_err(|e| io_err(&format!("writing {}", repr_path.display()), e))?;
        writeln!(
            out,
            "{stem}: {} terms over {} documents -> {} ({} bytes)",
            summary.repr.distinct_terms(),
            summary.repr.n_docs(),
            repr_path.display(),
            bytes.len()
        )
        .map_err(|e| io_err("writing output", e))?;
        refreshed += 1;
    }
    writeln!(
        out,
        "refreshed {refreshed} of {} representatives",
        engines.len()
    )
    .map_err(|e| io_err("writing output", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seu-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_to_string(f: impl FnOnce(&mut dyn Write) -> Result<(), String>) -> String {
        let mut buf = Vec::new();
        f(&mut buf).expect("command succeeds");
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn full_pipeline_index_repr_search_broker() {
        let dir = tmpdir("pipe");
        let docs = dir.join("docs");
        fs::create_dir_all(&docs).unwrap();
        fs::write(docs.join("a.txt"), "mushroom soup with cream").unwrap();
        fs::write(docs.join("b.txt"), "sourdough bread baking").unwrap();
        let engine_file = dir.join("cooking.bin");

        let msg = run_to_string(|out| index(&docs, &engine_file, false, out));
        assert!(msg.contains("indexed 2 documents"), "{msg}");

        let repr_file = dir.join("cooking.repr");
        let msg = run_to_string(|out| repr(&engine_file, &repr_file, true, out));
        assert!(msg.contains("quantized"), "{msg}");

        let msg = run_to_string(|out| search(&engine_file, "soup", 0.1, None, out));
        assert!(msg.contains("a.txt"), "{msg}");
        assert!(!msg.contains("b.txt"), "{msg}");

        let msg = run_to_string(|out| search(&engine_file, "soup bread", 0.0, Some(1), out));
        assert!(msg.starts_with("1 hits"), "{msg}");

        // Broker over one engine (sharded registries answer the same).
        for shards in [1, 4] {
            let msg = run_to_string(|out| {
                broker(
                    std::slice::from_ref(&engine_file),
                    "mushroom soup",
                    0.2,
                    shards,
                    false,
                    out,
                )
            });
            assert!(msg.contains("selected: [\"cooking\"]"), "{msg}");
        }

        // Estimate works from the portable representative alone.
        let msg = run_to_string(|out| estimate(&repr_file, "soup", 0.1, out));
        assert!(msg.contains("estimated NoDoc"), "{msg}");
        assert!(msg.contains("rounded 1"), "{msg}");
        // Unknown query terms estimate zero.
        let msg = run_to_string(|out| estimate(&repr_file, "zebra", 0.1, out));
        assert!(msg.contains("rounded 0"), "{msg}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_rebuilds_only_stale_representatives() {
        let dir = tmpdir("refresh");
        let docs = dir.join("docs");
        fs::create_dir_all(&docs).unwrap();
        fs::write(docs.join("a.txt"), "mushroom soup with cream").unwrap();
        let engine_file = dir.join("cooking.bin");
        run_to_string(|out| index(&docs, &engine_file, false, out));

        let repr_dir = dir.join("reprs");
        let engines = vec![engine_file.clone()];

        // No representative on disk: --stale-only rebuilds it.
        let msg = run_to_string(|out| refresh(&engines, &repr_dir, true, out));
        assert!(msg.contains("refreshed 1 of 1"), "{msg}");
        assert!(repr_dir.join("cooking.repr").exists());

        // Unchanged collection: --stale-only skips it.
        let msg = run_to_string(|out| refresh(&engines, &repr_dir, true, out));
        assert!(msg.contains("up to date"), "{msg}");
        assert!(msg.contains("refreshed 0 of 1"), "{msg}");

        // The collection grows (re-index with one more document): the
        // representative no longer matches and is rebuilt.
        fs::write(docs.join("b.txt"), "a second document about porcini").unwrap();
        run_to_string(|out| index(&docs, &engine_file, false, out));
        let msg = run_to_string(|out| refresh(&engines, &repr_dir, true, out));
        assert!(msg.contains("refreshed 1 of 1"), "{msg}");

        // Without --stale-only everything is rebuilt unconditionally.
        let msg = run_to_string(|out| refresh(&engines, &repr_dir, false, out));
        assert!(msg.contains("refreshed 1 of 1"), "{msg}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_mbox_file() {
        let dir = tmpdir("mbox");
        let mbox = dir.join("group.mbox");
        fs::write(
            &mbox,
            "From a\nSubject: soup\n\nporcini question\n\nFrom b\n\nbread answer\n",
        )
        .unwrap();
        let engine_file = dir.join("group.bin");
        let msg = run_to_string(|out| index(&mbox, &engine_file, false, out));
        assert!(msg.contains("indexed 2 documents"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_error_cleanly() {
        let dir = tmpdir("bad");
        let bad = dir.join("bad.bin");
        fs::write(&bad, b"garbage").unwrap();
        assert!(load_engine(&bad).unwrap_err().contains("not a valid"));
        assert!(search(&bad, "x", 0.1, None, &mut Vec::new()).is_err());
        assert!(estimate(&bad, "x", 0.1, &mut Vec::new()).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
