//! The `seu` command-line tool — see the crate docs for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprintln!("{}", seu_cli::args::USAGE);
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let invocation = match seu_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{}", seu_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = seu_cli::run(&invocation, &mut lock) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
