//! Hand-rolled argument parsing (no external CLI crates).

use std::path::PathBuf;

/// A fully parsed `seu` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `seu index <dir|mbox> -o engine.bin [--stem]`
    Index {
        /// Directory of documents or an mbox file.
        input: PathBuf,
        /// Output engine file.
        output: PathBuf,
        /// Apply the Porter stemmer during analysis.
        stem: bool,
    },
    /// `seu repr <engine.bin> -o repr.bin [--quantize]`
    Repr {
        /// Persisted engine file.
        engine: PathBuf,
        /// Output representative file.
        output: PathBuf,
        /// Round-trip every number through the one-byte codec first.
        quantize: bool,
    },
    /// `seu estimate <repr.bin> -q "..." [-t 0.2]`
    Estimate {
        /// Representative file.
        repr: PathBuf,
        /// Query text.
        query: String,
        /// Similarity threshold.
        threshold: f64,
    },
    /// `seu search <engine.bin> -q "..." [-t T] [-k K]`
    Search {
        /// Persisted engine file.
        engine: PathBuf,
        /// Query text.
        query: String,
        /// Similarity threshold (used when `top_k` is `None`).
        threshold: f64,
        /// Top-k mode instead of threshold mode.
        top_k: Option<usize>,
    },
    /// `seu broker <engine.bin>... -q "..." [-t T] [--shards N] [--no-cache]`
    Broker {
        /// Persisted engine files.
        engines: Vec<PathBuf>,
        /// Query text.
        query: String,
        /// Similarity threshold.
        threshold: f64,
        /// Registry shard count (1 = flat).
        shards: usize,
        /// Run the broker without its query cache.
        no_cache: bool,
    },
    /// `seu serve <engine.bin>... [--remote <host:port>]... --listen <addr>
    /// [--store <dir>] [--shards N] [--no-cache] [--join <hosts-file>]`
    Serve {
        /// Persisted engine files to register locally.
        engines: Vec<PathBuf>,
        /// `host:port` addresses of engine servers to register remotely
        /// (with push-invalidation subscriptions).
        remotes: Vec<String>,
        /// Address the HTTP admin server binds (port 0 for ephemeral).
        listen: String,
        /// Persistent representative store to write through — and, when
        /// no engines or remotes are given, to restore the registry
        /// from at startup.
        store: Option<PathBuf>,
        /// Registry shard count (1 = flat).
        shards: usize,
        /// Run the broker without its query cache.
        no_cache: bool,
        /// Hosts file to join as a federation replica: the broker also
        /// binds a replica-protocol listener and announces
        /// `id endpoint` into this file for front-doors watching it.
        join: Option<PathBuf>,
    },
    /// `seu front-door [--replica <[id=]host:port>]... [--hosts-file <path>]
    /// [--engine <[name=]host:port>]... --listen <addr> [--vnodes N]
    /// [--replication N]`
    FrontDoor {
        /// Static replica list: `id=host:port` (or bare `host:port`,
        /// which uses the endpoint as the ring id).
        replicas: Vec<String>,
        /// Hosts file to watch for replicas joining and leaving
        /// (`seu serve --join` announces into it).
        hosts_file: Option<PathBuf>,
        /// Engine servers to register through the front door:
        /// `name=host:port` (or bare `host:port`, which dials the
        /// engine for its advertised name).
        engines: Vec<String>,
        /// Address the HTTP admin server binds (port 0 for ephemeral).
        listen: String,
        /// Virtual nodes per replica on the placement ring (0 = default).
        vnodes: usize,
        /// How many ring candidates hold each engine (primary + standbys).
        replication: usize,
    },
    /// `seu snapshot <engine.bin>... --store <dir> [--shards N]`
    Snapshot {
        /// Persisted engine files to register and persist.
        engines: Vec<PathBuf>,
        /// Store directory the registry cut is committed to.
        store: PathBuf,
        /// Registry shard count (1 = flat).
        shards: usize,
    },
    /// `seu restore --store <dir> [-q <query>] [-t T] [--shards N]
    /// [--no-cache]`
    Restore {
        /// Store directory holding the committed manifest.
        store: PathBuf,
        /// Optional query to estimate over the restored registry.
        query: Option<String>,
        /// Similarity threshold for the query.
        threshold: f64,
        /// Registry shard count (1 = flat).
        shards: usize,
        /// Run the broker without its query cache.
        no_cache: bool,
    },
    /// `seu serve-engine <engine.bin> --listen <addr> [--name <name>]
    /// [--threaded] [--workers N]`
    ServeEngine {
        /// Persisted engine file to serve.
        engine: PathBuf,
        /// Address the TCP engine server binds (port 0 for ephemeral).
        listen: String,
        /// Advertised engine name (defaults to the file stem).
        name: Option<String>,
        /// Serve with the legacy thread-per-connection scheduler instead
        /// of the event loop.
        threaded: bool,
        /// Event-loop worker threads (0 = auto).
        workers: usize,
    },
    /// `seu refresh <engine.bin>... --repr-dir <dir> [--stale-only]`
    Refresh {
        /// Persisted engine files.
        engines: Vec<PathBuf>,
        /// Directory the portable representatives live in (one
        /// `<engine-stem>.repr` per engine).
        repr_dir: PathBuf,
        /// Skip engines whose existing representative still matches the
        /// collection's totals.
        stale_only: bool,
    },
}

/// Observability options shared by every subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsOptions {
    /// Print a metrics snapshot after the command runs.
    pub stats: bool,
    /// Write the metrics snapshot as JSON to this path.
    pub metrics_out: Option<PathBuf>,
    /// Append slow-query log lines to this file instead of stderr.
    pub trace_out: Option<PathBuf>,
    /// Slow-query threshold in milliseconds (default 500).
    pub slow_ms: Option<u64>,
    /// Trace sampling: keep one trace per this many requests
    /// (0 = never, 1 = every request; default 64).
    pub trace_sample: Option<u64>,
}

/// A parsed command plus the flags that apply to all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand.
    pub command: Command,
    /// Observability options.
    pub obs: ObsOptions,
}

/// The usage string printed on parse failure.
pub const USAGE: &str = "\
usage:
  seu index <dir|mbox-file> -o <engine.bin> [--stem]
  seu repr <engine.bin> -o <repr.bin> [--quantize]
  seu estimate <repr.bin> -q <query> [-t <threshold>]
  seu search <engine.bin> -q <query> [-t <threshold>] [-k <top-k>]
  seu broker <engine.bin>... -q <query> [-t <threshold>] [--shards <n>] [--no-cache]
  seu serve <engine.bin>... [--remote <host:port>]... --listen <addr> [--store <dir>] [--shards <n>] [--no-cache] [--join <hosts-file>]
  seu front-door [--replica <[id=]host:port>]... [--hosts-file <path>] [--engine <[name=]host:port>]... --listen <addr> [--vnodes <n>] [--replication <n>]
  seu serve-engine <engine.bin> --listen <addr> [--name <name>] [--threaded] [--workers <n>]
  seu refresh <engine.bin>... --repr-dir <dir> [--stale-only]
  seu snapshot <engine.bin>... --store <dir> [--shards <n>]
  seu restore --store <dir> [-q <query>] [-t <threshold>] [--shards <n>] [--no-cache]
global flags:
  --stats               print a metrics snapshot after the command
  --metrics-out <path>  write the metrics snapshot as JSON
  --trace-out <path>    append slow-query log lines to this file (default stderr)
  --slow-ms <n>         slow-query threshold in milliseconds (default 500)
  --trace-sample <n>    keep one trace per <n> requests (0 = never, 1 = all; default 64)";

struct Cursor {
    args: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<&str> {
        let a = self.args.get(self.pos)?;
        self.pos += 1;
        Some(a)
    }

    fn value_for(&mut self, flag: &str) -> Result<String, String> {
        self.next()
            .map(str::to_string)
            .ok_or_else(|| format!("{flag} needs a value"))
    }
}

/// Parses a `seu` command line (without the program name).
pub fn parse(args: &[String]) -> Result<Invocation, String> {
    let mut cur = Cursor {
        args: args.to_vec(),
        pos: 0,
    };
    let sub = cur
        .next()
        .ok_or_else(|| "missing command".to_string())?
        .to_string();

    // Shared option state.
    let mut positionals: Vec<PathBuf> = Vec::new();
    let mut output: Option<PathBuf> = None;
    let mut query: Option<String> = None;
    let mut threshold = 0.2f64;
    let mut top_k: Option<usize> = None;
    let mut stem = false;
    let mut quantize = false;
    let mut repr_dir: Option<PathBuf> = None;
    let mut store_path: Option<PathBuf> = None;
    let mut stale_only = false;
    let mut listen: Option<String> = None;
    let mut remotes: Vec<String> = Vec::new();
    let mut name: Option<String> = None;
    let mut shards = 1usize;
    let mut no_cache = false;
    let mut threaded = false;
    let mut workers = 0usize;
    let mut join: Option<PathBuf> = None;
    let mut hosts_file: Option<PathBuf> = None;
    let mut replicas: Vec<String> = Vec::new();
    let mut engine_endpoints: Vec<String> = Vec::new();
    let mut vnodes = 0usize;
    let mut replication = 2usize;
    let mut obs = ObsOptions::default();

    while let Some(arg) = cur.next().map(str::to_string) {
        match arg.as_str() {
            "-o" | "--output" => output = Some(PathBuf::from(cur.value_for("-o")?)),
            "--stats" => obs.stats = true,
            "--metrics-out" => {
                obs.metrics_out = Some(PathBuf::from(cur.value_for("--metrics-out")?));
            }
            "--trace-out" => {
                obs.trace_out = Some(PathBuf::from(cur.value_for("--trace-out")?));
            }
            "--slow-ms" => {
                obs.slow_ms = Some(
                    cur.value_for("--slow-ms")?
                        .parse()
                        .map_err(|_| "--slow-ms needs an integer".to_string())?,
                );
            }
            "--trace-sample" => {
                obs.trace_sample = Some(
                    cur.value_for("--trace-sample")?
                        .parse()
                        .map_err(|_| "--trace-sample needs an integer".to_string())?,
                );
            }
            "-q" | "--query" => query = Some(cur.value_for("-q")?),
            "-t" | "--threshold" => {
                threshold = cur
                    .value_for("-t")?
                    .parse()
                    .map_err(|_| "-t needs a number".to_string())?;
            }
            "-k" | "--top-k" => {
                top_k = Some(
                    cur.value_for("-k")?
                        .parse()
                        .map_err(|_| "-k needs an integer".to_string())?,
                );
            }
            "--stem" => stem = true,
            "--quantize" => quantize = true,
            "--repr-dir" => repr_dir = Some(PathBuf::from(cur.value_for("--repr-dir")?)),
            "--store" => store_path = Some(PathBuf::from(cur.value_for("--store")?)),
            "--stale-only" => stale_only = true,
            "--no-cache" => no_cache = true,
            "--listen" => listen = Some(cur.value_for("--listen")?),
            "--remote" => remotes.push(cur.value_for("--remote")?),
            "--name" => name = Some(cur.value_for("--name")?),
            "--shards" => {
                shards = cur
                    .value_for("--shards")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--shards needs a positive integer".to_string())?;
            }
            "--threaded" => threaded = true,
            "--join" => join = Some(PathBuf::from(cur.value_for("--join")?)),
            "--hosts-file" => hosts_file = Some(PathBuf::from(cur.value_for("--hosts-file")?)),
            "--replica" => replicas.push(cur.value_for("--replica")?),
            "--engine" => engine_endpoints.push(cur.value_for("--engine")?),
            "--vnodes" => {
                vnodes = cur
                    .value_for("--vnodes")?
                    .parse()
                    .map_err(|_| "--vnodes needs an integer".to_string())?;
            }
            "--replication" => {
                replication = cur
                    .value_for("--replication")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--replication needs a positive integer".to_string())?;
            }
            "--workers" => {
                workers = cur
                    .value_for("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => positionals.push(PathBuf::from(other)),
        }
    }

    let one_positional = |what: &str| -> Result<PathBuf, String> {
        match positionals.len() {
            1 => Ok(positionals[0].clone()),
            0 => Err(format!("missing {what}")),
            _ => Err(format!("expected exactly one {what}")),
        }
    };
    let need_query = || {
        query
            .clone()
            .ok_or_else(|| "missing -q <query>".to_string())
    };

    let command = match sub.as_str() {
        "index" => Command::Index {
            input: one_positional("input path")?,
            output: output.ok_or("missing -o <engine.bin>")?,
            stem,
        },
        "repr" => Command::Repr {
            engine: one_positional("engine file")?,
            output: output.ok_or("missing -o <repr.bin>")?,
            quantize,
        },
        "estimate" => Command::Estimate {
            repr: one_positional("representative file")?,
            query: need_query()?,
            threshold,
        },
        "search" => Command::Search {
            engine: one_positional("engine file")?,
            query: need_query()?,
            threshold,
            top_k,
        },
        "broker" => {
            if positionals.is_empty() {
                return Err("broker needs at least one engine file".into());
            }
            Command::Broker {
                engines: positionals,
                query: need_query()?,
                threshold,
                shards,
                no_cache,
            }
        }
        "serve" => {
            // With --join an empty broker is the normal case: a
            // federation replica starts bare and the front-door
            // installs engines onto it.
            if positionals.is_empty()
                && remotes.is_empty()
                && store_path.is_none()
                && join.is_none()
            {
                return Err(
                    "serve needs at least one engine file, --remote, --store, or --join".into(),
                );
            }
            Command::Serve {
                engines: positionals,
                remotes,
                listen: listen.ok_or("missing --listen <addr>")?,
                store: store_path,
                shards,
                no_cache,
                join,
            }
        }
        "front-door" => {
            if replicas.is_empty() && hosts_file.is_none() {
                return Err("front-door needs at least one --replica or a --hosts-file".into());
            }
            for spec in &replicas {
                let id = spec.split_once('=').map_or(spec.as_str(), |(id, _)| id);
                if id.contains('#') {
                    return Err(format!("replica id {id:?} must not contain '#'"));
                }
            }
            Command::FrontDoor {
                replicas,
                hosts_file,
                engines: engine_endpoints,
                listen: listen.ok_or("missing --listen <addr>")?,
                vnodes,
                replication,
            }
        }
        "serve-engine" => Command::ServeEngine {
            engine: one_positional("engine file")?,
            listen: listen.ok_or("missing --listen <addr>")?,
            name,
            threaded,
            workers,
        },
        "refresh" => {
            if positionals.is_empty() {
                return Err("refresh needs at least one engine file".into());
            }
            Command::Refresh {
                engines: positionals,
                repr_dir: repr_dir.ok_or("missing --repr-dir <dir>")?,
                stale_only,
            }
        }
        "snapshot" => {
            if positionals.is_empty() {
                return Err("snapshot needs at least one engine file".into());
            }
            Command::Snapshot {
                engines: positionals,
                store: store_path.ok_or("missing --store <dir>")?,
                shards,
            }
        }
        "restore" => Command::Restore {
            store: store_path.ok_or("missing --store <dir>")?,
            query: query.clone(),
            threshold,
            shards,
            no_cache,
        },
        other => return Err(format!("unknown command {other}")),
    };
    Ok(Invocation { command, obs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn p(args: &[&str]) -> Result<Invocation, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn index_parses() {
        assert_eq!(
            p(&["index", "docs/", "-o", "e.bin", "--stem"])
                .unwrap()
                .command,
            Command::Index {
                input: "docs/".into(),
                output: "e.bin".into(),
                stem: true,
            }
        );
        assert!(p(&["index", "docs/"]).unwrap_err().contains("-o"));
    }

    #[test]
    fn repr_parses() {
        assert_eq!(
            p(&["repr", "e.bin", "-o", "r.bin"]).unwrap().command,
            Command::Repr {
                engine: "e.bin".into(),
                output: "r.bin".into(),
                quantize: false,
            }
        );
        assert!(matches!(
            p(&["repr", "e.bin", "-o", "r.bin", "--quantize"])
                .unwrap()
                .command,
            Command::Repr { quantize: true, .. }
        ));
    }

    #[test]
    fn estimate_and_search_parse() {
        assert_eq!(
            p(&["estimate", "r.bin", "-q", "mushroom soup", "-t", "0.3"])
                .unwrap()
                .command,
            Command::Estimate {
                repr: "r.bin".into(),
                query: "mushroom soup".into(),
                threshold: 0.3,
            }
        );
        assert_eq!(
            p(&["search", "e.bin", "-q", "soup", "-k", "5"])
                .unwrap()
                .command,
            Command::Search {
                engine: "e.bin".into(),
                query: "soup".into(),
                threshold: 0.2,
                top_k: Some(5),
            }
        );
    }

    #[test]
    fn broker_takes_many_engines() {
        match p(&["broker", "a.bin", "b.bin", "c.bin", "-q", "x"])
            .unwrap()
            .command
        {
            Command::Broker {
                engines, shards, ..
            } => {
                assert_eq!(engines.len(), 3);
                assert_eq!(shards, 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["broker", "-q", "x"]).unwrap_err().contains("engine"));
        assert!(matches!(
            p(&["broker", "a.bin", "-q", "x", "--shards", "8"])
                .unwrap()
                .command,
            Command::Broker { shards: 8, .. }
        ));
        assert!(p(&["broker", "a.bin", "-q", "x", "--shards", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(matches!(
            p(&["broker", "a.bin", "-q", "x", "--no-cache"])
                .unwrap()
                .command,
            Command::Broker { no_cache: true, .. }
        ));
    }

    #[test]
    fn refresh_parses() {
        assert_eq!(
            p(&["refresh", "a.bin", "b.bin", "--repr-dir", "reprs/"])
                .unwrap()
                .command,
            Command::Refresh {
                engines: vec!["a.bin".into(), "b.bin".into()],
                repr_dir: "reprs/".into(),
                stale_only: false,
            }
        );
        assert!(matches!(
            p(&["refresh", "a.bin", "--repr-dir", "r/", "--stale-only"])
                .unwrap()
                .command,
            Command::Refresh {
                stale_only: true,
                ..
            }
        ));
        assert!(p(&["refresh", "a.bin"]).unwrap_err().contains("--repr-dir"));
        assert!(p(&["refresh", "--repr-dir", "r/"])
            .unwrap_err()
            .contains("engine"));
    }

    #[test]
    fn serve_parses() {
        assert_eq!(
            p(&[
                "serve",
                "a.bin",
                "--remote",
                "127.0.0.1:4001",
                "--remote",
                "127.0.0.1:4002",
                "--listen",
                "127.0.0.1:8080",
            ])
            .unwrap()
            .command,
            Command::Serve {
                engines: vec!["a.bin".into()],
                remotes: vec!["127.0.0.1:4001".into(), "127.0.0.1:4002".into()],
                listen: "127.0.0.1:8080".into(),
                store: None,
                shards: 1,
                no_cache: false,
                join: None,
            }
        );
        assert!(matches!(
            p(&["serve", "a.bin", "--listen", "l:0", "--shards", "16"])
                .unwrap()
                .command,
            Command::Serve { shards: 16, .. }
        ));
        assert!(matches!(
            p(&["serve", "a.bin", "--listen", "l:0", "--no-cache"])
                .unwrap()
                .command,
            Command::Serve { no_cache: true, .. }
        ));
        // Remote-only brokers are legal; engine-less and remote-less is not.
        assert!(matches!(
            p(&["serve", "--remote", "h:1", "--listen", "l:0"])
                .unwrap()
                .command,
            Command::Serve { engines, .. } if engines.is_empty()
        ));
        assert!(p(&["serve", "--listen", "l:0"])
            .unwrap_err()
            .contains("engine"));
        assert!(p(&["serve", "a.bin"]).unwrap_err().contains("--listen"));
        // A store-only serve restores its registry from the store.
        assert!(matches!(
            p(&["serve", "--store", "reg/", "--listen", "l:0"])
                .unwrap()
                .command,
            Command::Serve { store: Some(s), engines, .. }
                if s == Path::new("reg/") && engines.is_empty()
        ));
        assert!(matches!(
            p(&["serve", "a.bin", "--listen", "l:0", "--store", "reg/"])
                .unwrap()
                .command,
            Command::Serve { store: Some(_), .. }
        ));
    }

    #[test]
    fn serve_join_parses() {
        assert!(matches!(
            p(&["serve", "a.bin", "--listen", "l:0", "--join", "cluster.hosts"])
                .unwrap()
                .command,
            Command::Serve { join: Some(j), .. } if j == Path::new("cluster.hosts")
        ));
        assert!(matches!(
            p(&["serve", "a.bin", "--listen", "l:0"]).unwrap().command,
            Command::Serve { join: None, .. }
        ));
        // A bare replica: no engines at all is legal with --join (the
        // front-door installs engines onto it) but an error without.
        assert!(matches!(
            p(&["serve", "--listen", "l:0", "--join", "cluster.hosts"])
                .unwrap()
                .command,
            Command::Serve { ref engines, join: Some(_), .. } if engines.is_empty()
        ));
        assert!(p(&["serve", "--listen", "l:0"]).is_err());
    }

    #[test]
    fn front_door_parses() {
        assert_eq!(
            p(&[
                "front-door",
                "--replica",
                "r0=127.0.0.1:9000",
                "--replica",
                "127.0.0.1:9001",
                "--engine",
                "news=127.0.0.1:7000",
                "--listen",
                "127.0.0.1:8080",
                "--vnodes",
                "64",
                "--replication",
                "3",
            ])
            .unwrap()
            .command,
            Command::FrontDoor {
                replicas: vec!["r0=127.0.0.1:9000".into(), "127.0.0.1:9001".into()],
                hosts_file: None,
                engines: vec!["news=127.0.0.1:7000".into()],
                listen: "127.0.0.1:8080".into(),
                vnodes: 64,
                replication: 3,
            }
        );
        // Hosts-file-only discovery is legal; no replica source is not.
        assert!(matches!(
            p(&["front-door", "--hosts-file", "cluster.hosts", "--listen", "l:0"])
                .unwrap()
                .command,
            Command::FrontDoor { hosts_file: Some(h), replicas, replication: 2, .. }
                if h == Path::new("cluster.hosts") && replicas.is_empty()
        ));
        assert!(p(&["front-door", "--listen", "l:0"])
            .unwrap_err()
            .contains("--replica"));
        assert!(p(&["front-door", "--replica", "r0=h:1"])
            .unwrap_err()
            .contains("--listen"));
        // '#' structures ring point hashes, so ids must not contain it.
        assert!(
            p(&["front-door", "--replica", "r#0=h:1", "--listen", "l:0"])
                .unwrap_err()
                .contains("'#'")
        );
        assert!(p(&[
            "front-door",
            "--replica",
            "h:1",
            "--listen",
            "l:0",
            "--replication",
            "0"
        ])
        .unwrap_err()
        .contains("--replication"));
    }

    #[test]
    fn snapshot_parses() {
        assert_eq!(
            p(&["snapshot", "a.bin", "b.bin", "--store", "reg/", "--shards", "4"])
                .unwrap()
                .command,
            Command::Snapshot {
                engines: vec!["a.bin".into(), "b.bin".into()],
                store: "reg/".into(),
                shards: 4,
            }
        );
        assert!(p(&["snapshot", "a.bin"]).unwrap_err().contains("--store"));
        assert!(p(&["snapshot", "--store", "reg/"])
            .unwrap_err()
            .contains("engine"));
    }

    #[test]
    fn restore_parses() {
        assert_eq!(
            p(&["restore", "--store", "reg/"]).unwrap().command,
            Command::Restore {
                store: "reg/".into(),
                query: None,
                threshold: 0.2,
                shards: 1,
                no_cache: false,
            }
        );
        assert_eq!(
            p(&[
                "restore",
                "--store",
                "reg/",
                "-q",
                "soup",
                "-t",
                "0.1",
                "--shards",
                "2",
                "--no-cache",
            ])
            .unwrap()
            .command,
            Command::Restore {
                store: "reg/".into(),
                query: Some("soup".into()),
                threshold: 0.1,
                shards: 2,
                no_cache: true,
            }
        );
        assert!(p(&["restore"]).unwrap_err().contains("--store"));
    }

    #[test]
    fn serve_engine_parses() {
        assert_eq!(
            p(&["serve-engine", "a.bin", "--listen", "127.0.0.1:0"])
                .unwrap()
                .command,
            Command::ServeEngine {
                engine: "a.bin".into(),
                listen: "127.0.0.1:0".into(),
                name: None,
                threaded: false,
                workers: 0,
            }
        );
        assert!(matches!(
            p(&["serve-engine", "a.bin", "--listen", "l:0", "--name", "news"])
                .unwrap()
                .command,
            Command::ServeEngine { name: Some(n), .. } if n == "news"
        ));
        assert!(matches!(
            p(&[
                "serve-engine",
                "a.bin",
                "--listen",
                "l:0",
                "--threaded",
                "--workers",
                "3"
            ])
            .unwrap()
            .command,
            Command::ServeEngine {
                threaded: true,
                workers: 3,
                ..
            }
        ));
        assert!(p(&["serve-engine", "a.bin"])
            .unwrap_err()
            .contains("--listen"));
    }

    #[test]
    fn obs_flags_parse_on_any_command() {
        let inv = p(&["search", "e.bin", "-q", "soup", "--stats"]).unwrap();
        assert!(inv.obs.stats);
        assert_eq!(inv.obs.metrics_out, None);

        let inv = p(&[
            "estimate",
            "r.bin",
            "-q",
            "x",
            "--metrics-out",
            "m.json",
            "--stats",
        ])
        .unwrap();
        assert!(inv.obs.stats);
        assert_eq!(inv.obs.metrics_out, Some("m.json".into()));

        // Defaults stay off.
        let inv = p(&["search", "e.bin", "-q", "soup"]).unwrap();
        assert_eq!(inv.obs, ObsOptions::default());
        assert!(p(&["search", "e.bin", "-q", "x", "--metrics-out"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn trace_flags_parse() {
        let inv = p(&[
            "serve",
            "a.bin",
            "--listen",
            "l:0",
            "--trace-out",
            "slow.log",
            "--slow-ms",
            "250",
            "--trace-sample",
            "1",
        ])
        .unwrap();
        assert_eq!(inv.obs.trace_out, Some("slow.log".into()));
        assert_eq!(inv.obs.slow_ms, Some(250));
        assert_eq!(inv.obs.trace_sample, Some(1));

        // Defaults stay unset so the tracer's own defaults apply.
        let inv = p(&["search", "e.bin", "-q", "soup"]).unwrap();
        assert_eq!(inv.obs.trace_out, None);
        assert_eq!(inv.obs.slow_ms, None);
        assert_eq!(inv.obs.trace_sample, None);
        assert!(p(&["search", "e.bin", "-q", "x", "--slow-ms", "abc"])
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(p(&[]).unwrap_err().contains("missing command"));
        assert!(p(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(p(&["search", "e.bin"]).unwrap_err().contains("-q"));
        assert!(p(&["search", "e.bin", "-q", "x", "-t", "abc"])
            .unwrap_err()
            .contains("number"));
        assert!(p(&["search", "e.bin", "-q", "x", "--bogus"])
            .unwrap_err()
            .contains("unknown flag"));
    }
}
