//! Integration: a whole federation assembled from CLI building blocks —
//! engine servers, replica brokers announcing into a hosts file via
//! `serve --join`, and a `front-door` that discovers them, places
//! engines, fails over, and serves the same HTTP admin surface a flat
//! broker does.

use seu_cli::commands::{front_door_start, serve_engine_start, serve_join_start};
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn build_engine_file(dir: &Path, name: &str, docs: &[(&str, &str)]) -> PathBuf {
    let docs_dir = dir.join(format!("{name}-docs"));
    fs::create_dir_all(&docs_dir).unwrap();
    for (file, text) in docs {
        fs::write(docs_dir.join(file), text).unwrap();
    }
    let engine = dir.join(format!("{name}.bin"));
    let args: Vec<String> = [
        "index",
        docs_dir.to_str().unwrap(),
        "-o",
        engine.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let invocation = seu_cli::parse(&args).unwrap();
    seu_cli::run(&invocation, &mut Vec::new()).expect("index succeeds");
    engine
}

fn http_post_search(addr: std::net::SocketAddr, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /search HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

#[test]
fn front_door_discovers_replicas_from_the_join_file_and_survives_a_kill() {
    let dir = std::env::temp_dir().join(format!("seu-cli-federation-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let hosts = dir.join("cluster.hosts");

    // Two engines, each on its own TCP server.
    let pantry = build_engine_file(
        &dir,
        "pantry",
        &[
            ("a.txt", "mushroom soup with cream"),
            ("b.txt", "tomato soup"),
        ],
    );
    let library = build_engine_file(
        &dir,
        "library",
        &[
            ("c.txt", "databases and query optimization"),
            ("d.txt", "indexing for retrieval"),
        ],
    );
    let pantry_server = serve_engine_start(&pantry, None, "127.0.0.1:0").expect("pantry serves");
    let library_server = serve_engine_start(&library, None, "127.0.0.1:0").expect("library serves");

    // Two empty replica brokers join the cluster by announcing into the
    // hosts file.
    let (admin_a, replica_a, _subs_a) =
        serve_join_start(&[], &[], "127.0.0.1:0", None, 1, false, &hosts)
            .expect("replica a serves");
    let (admin_b, replica_b, _subs_b) =
        serve_join_start(&[], &[], "127.0.0.1:0", None, 1, false, &hosts)
            .expect("replica b serves");
    let announced = fs::read_to_string(&hosts).unwrap();
    assert!(
        announced.contains(&replica_a.addr().to_string())
            && announced.contains(&replica_b.addr().to_string()),
        "join file missing announcements: {announced:?}"
    );

    // The front-door discovers both from the file alone and registers
    // the engines through the placement ring (replication 2 puts each
    // engine on both replicas).
    let (admin, fd, _runtime) = front_door_start(
        &[],
        Some(&hosts),
        &[
            format!("pantry={}", pantry_server.addr()),
            // The bare form dials the engine for its advertised name.
            library_server.addr().to_string(),
        ],
        "127.0.0.1:0",
        0,
        2,
    )
    .expect("front door starts");
    assert_eq!(fd.replica_count(), 2);
    assert_eq!(
        fd.engine_names(),
        vec!["pantry".to_string(), "library".to_string()]
    );

    let (status, body) = http_post_search(admin.addr(), r#"{"query":"soup","threshold":0.1}"#);
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("pantry"), "pantry hits missing: {body}");

    // Kill one replica; the front-door fails over to the survivor and
    // the admin surface keeps answering.
    drop(replica_b);
    drop(admin_b);
    let (status, body) = http_post_search(admin.addr(), r#"{"query":"soup","threshold":0.1}"#);
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("pantry"), "post-kill hits missing: {body}");

    drop(replica_a);
    drop(admin_a);
    let _ = fs::remove_dir_all(&dir);
}
