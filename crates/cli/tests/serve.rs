//! Integration: the `serve-engine` + `serve` pair assembled in process —
//! an engine file served over TCP, a broker serving HTTP with one local
//! and one remote engine, and a `/metrics` scrape seeing both families.

use seu_cli::commands::{serve_engine_start, serve_start};
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn build_engine_file(dir: &Path, name: &str, docs: &[(&str, &str)]) -> PathBuf {
    let docs_dir = dir.join(format!("{name}-docs"));
    fs::create_dir_all(&docs_dir).unwrap();
    for (file, text) in docs {
        fs::write(docs_dir.join(file), text).unwrap();
    }
    let engine = dir.join(format!("{name}.bin"));
    let args: Vec<String> = [
        "index",
        docs_dir.to_str().unwrap(),
        "-o",
        engine.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let invocation = seu_cli::parse(&args).unwrap();
    seu_cli::run(&invocation, &mut Vec::new()).expect("index succeeds");
    engine
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

#[test]
fn serve_session_registers_local_and_remote_engines() {
    let dir = std::env::temp_dir().join(format!("seu-cli-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let local = build_engine_file(
        &dir,
        "pantry",
        &[
            ("a.txt", "mushroom soup with cream"),
            ("b.txt", "tomato soup"),
        ],
    );
    let remote = build_engine_file(
        &dir,
        "library",
        &[
            ("c.txt", "databases and query optimization"),
            ("d.txt", "indexing for retrieval"),
        ],
    );

    let engine_server = serve_engine_start(&remote, None, "127.0.0.1:0").expect("engine serves");
    assert_eq!(engine_server.name(), "library");

    // A sharded registry behind the admin server behaves identically.
    let (admin, subscriptions) = serve_start(
        &[local],
        &[engine_server.addr().to_string()],
        "127.0.0.1:0",
        None,
        4,
        false,
    )
    .expect("broker serves");
    assert_eq!(subscriptions.len(), 1);
    assert_eq!(engine_server.subscriber_count(), 1);

    let (status, body) = http_get(admin.addr(), "/engines");
    assert!(status.contains("200"), "{status}");
    let engines = seu_obs::json::parse(&body).expect("engines JSON");
    let rows = engines.as_arr().unwrap();
    assert_eq!(rows.len(), 2);
    let names: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("name").and_then(seu_obs::json::Json::as_str))
        .collect();
    assert!(
        names.contains(&"pantry") && names.contains(&"library"),
        "{names:?}"
    );

    let (status, body) = http_get(admin.addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("broker_registry_engines"), "{body}");
    assert!(body.contains("net_frames_sent_total"), "{body}");

    // Bad remote addresses fail registration with a typed, contextual
    // error instead of a panic or a half-built broker.
    let err = serve_start(
        &[],
        &["127.0.0.1:1".to_string()],
        "127.0.0.1:0",
        None,
        1,
        false,
    )
    .unwrap_err();
    assert!(err.contains("127.0.0.1:1"), "{err}");
}

#[test]
fn snapshot_then_store_only_serve_restores_the_registry() {
    let dir = std::env::temp_dir().join(format!("seu-cli-snaprestore-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let pantry = build_engine_file(
        &dir,
        "pantry",
        &[
            ("a.txt", "mushroom soup with cream"),
            ("b.txt", "tomato soup"),
        ],
    );
    let library = build_engine_file(
        &dir,
        "library",
        &[
            ("c.txt", "databases and query optimization"),
            ("d.txt", "indexing for retrieval"),
        ],
    );
    let store = dir.join("registry-store");

    // `seu snapshot`: register + write-through + commit a manifest.
    let args: Vec<String> = [
        "snapshot",
        pantry.to_str().unwrap(),
        library.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
        "--shards",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut buf = Vec::new();
    seu_cli::run(&seu_cli::parse(&args).unwrap(), &mut buf).expect("snapshot succeeds");
    let msg = String::from_utf8(buf).unwrap();
    assert!(msg.contains("snapshot: 2 engines"), "{msg}");

    // `seu restore -q`: the registry rebuilds from the manifest alone
    // and estimates hydrate from the stored representatives.
    let args: Vec<String> = [
        "restore",
        "--store",
        store.to_str().unwrap(),
        "-q",
        "mushroom soup",
        "-t",
        "0.1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut buf = Vec::new();
    seu_cli::run(&seu_cli::parse(&args).unwrap(), &mut buf).expect("restore succeeds");
    let msg = String::from_utf8(buf).unwrap();
    assert!(msg.contains("restored 2 engines"), "{msg}");
    assert!(msg.contains("detached"), "{msg}");
    assert!(msg.contains("est NoDoc"), "{msg}");

    // A store-only serve session restores the same registry and reports
    // it over the admin API, detached until an engine re-attaches.
    let (admin, subscriptions) =
        serve_start(&[], &[], "127.0.0.1:0", Some(&store), 2, false).expect("store-only serve");
    assert!(subscriptions.is_empty());
    let (status, body) = http_get(admin.addr(), "/engines");
    assert!(status.contains("200"), "{status}");
    let engines = seu_obs::json::parse(&body).expect("engines JSON");
    let rows = engines.as_arr().unwrap();
    assert_eq!(rows.len(), 2, "{body}");
    for row in rows {
        assert_eq!(
            row.get("detached").and_then(seu_obs::json::Json::as_bool),
            Some(true),
            "{body}"
        );
    }

    fs::remove_dir_all(&dir).unwrap();
}
