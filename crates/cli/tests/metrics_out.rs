//! Integration: `--stats` prints a metrics snapshot after the command
//! and `--metrics-out` writes JSON that parses back into a
//! [`seu_obs::Snapshot`].

use seu_cli::{parse, run};
use std::fs;
use std::path::Path;

fn invoke(args: &[&str]) -> (Result<(), String>, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let invocation = parse(&args).expect("arguments parse");
    let mut out = Vec::new();
    let result = run(&invocation, &mut out);
    (result, String::from_utf8(out).expect("output is UTF-8"))
}

fn write_docs(dir: &Path) {
    fs::create_dir_all(dir).expect("create docs dir");
    fs::write(dir.join("a.txt"), "mushroom soup with cream and chives").unwrap();
    fs::write(
        dir.join("b.txt"),
        "grilled cheese sandwich with tomato soup",
    )
    .unwrap();
}

#[test]
fn stats_prints_and_metrics_out_roundtrips() {
    let dir = std::env::temp_dir().join(format!("seu-cli-metrics-{}", std::process::id()));
    let docs = dir.join("docs");
    write_docs(&docs);
    let engine = dir.join("engine.bin");
    let (result, _) = invoke(&[
        "index",
        docs.to_str().unwrap(),
        "-o",
        engine.to_str().unwrap(),
    ]);
    result.expect("index succeeds");

    let json_path = dir.join("metrics.json");
    let (result, out) = invoke(&[
        "search",
        engine.to_str().unwrap(),
        "-q",
        "mushroom soup",
        "--stats",
        "--metrics-out",
        json_path.to_str().unwrap(),
    ]);
    result.expect("search succeeds");

    // --stats appends the snapshot; eager registration means the broker
    // and estimator families show up even though a single-engine search
    // never touches them.
    assert!(out.contains("--- metrics ---"), "missing marker:\n{out}");
    assert!(out.contains("engine_searches_total"), "{out}");
    assert!(out.contains("broker_query_latency_seconds"), "{out}");
    assert!(out.contains("estimator_poly_terms_expanded_total"), "{out}");

    // --metrics-out wrote a JSON document that parses back.
    let text = fs::read_to_string(&json_path).expect("metrics file written");
    let snapshot = seu_obs::Snapshot::from_json(&text).expect("metrics JSON parses");
    assert!(
        snapshot
            .counters
            .get("engine_searches_total")
            .copied()
            .unwrap_or(0)
            >= 1,
        "search did not count: {:?}",
        snapshot.counters
    );
    assert!(snapshot
        .histograms
        .contains_key("broker_query_latency_seconds"));

    fs::remove_dir_all(&dir).ok();
}
