//! A vector-space local search engine.
//!
//! This is the substrate under both sides of the paper's experiment:
//!
//! * it **is** each local search engine — documents are term-frequency
//!   vectors, similarity is the Cosine function, retrieval is
//!   threshold-based or top-k over an inverted index;
//! * it supplies the **ground truth**: `NoDoc(T, q, D)` and
//!   `AvgSim(T, q, D)` computed exactly by scoring every matching document
//!   ([`SearchEngine::true_usefulness`]), against which the statistical
//!   estimates of `seu-core` are evaluated.
//!
//! Document and query vectors are normalized by their Euclidean norm at
//! build time, so every dot product is already a Cosine similarity in
//! `[0, 1]` (for non-negative weights) and "no threshold larger than 1 is
//! needed" (Section 4 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod index;
pub mod query;
pub mod search;
pub mod shared;
pub mod storage;
pub mod topk;
pub mod weighting;

pub use collection::{Collection, CollectionBuilder, DocId, Document, Fingerprint};
pub use index::InvertedIndex;
pub use query::Query;
pub use search::{SearchEngine, SearchHit, TrueUsefulness};
pub use shared::{weighted_query, TermMap};
pub use weighting::WeightingScheme;
