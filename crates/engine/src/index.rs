//! Inverted index: per-term postings of `(document, normalized weight)`.

use crate::collection::{Collection, DocId};
use serde::{Deserialize, Serialize};
use seu_text::TermId;

/// One posting: a document containing the term, with the term's normalized
/// weight in that document.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// Containing document.
    pub doc: DocId,
    /// Cosine-normalized weight of the term in the document.
    pub weight: f64,
}

/// The inverted index over a [`Collection`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Postings per term id, each sorted by document id.
    postings: Vec<Vec<Posting>>,
}

impl InvertedIndex {
    /// Builds the index from a collection in one pass over the documents.
    pub fn build(collection: &Collection) -> Self {
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); collection.vocab().len()];
        for (i, doc) in collection.docs().iter().enumerate() {
            let id = DocId(i as u32);
            for &(term, weight) in &doc.terms {
                postings[term.index()].push(Posting { doc: id, weight });
            }
        }
        InvertedIndex { postings }
    }

    /// Postings for a term (empty slice for out-of-vocabulary ids).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Document frequency of a term as seen by the index.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.postings(term).len()
    }

    /// Number of terms with at least one posting.
    pub fn active_terms(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total number of postings (index size driver).
    pub fn total_postings(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::weighting::WeightingScheme;
    use seu_text::Analyzer;

    fn index() -> (Collection, InvertedIndex) {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "apple banana");
        b.add_document("d1", "banana cherry banana");
        b.add_document("d2", "durian");
        let c = b.build();
        let i = InvertedIndex::build(&c);
        (c, i)
    }

    #[test]
    fn postings_match_documents() {
        let (c, idx) = index();
        let banana = c.vocab().get("banana").unwrap();
        let posts = idx.postings(banana);
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].doc, DocId(0));
        assert_eq!(posts[1].doc, DocId(1));
        // d1 = (banana:2, cherry:1) -> banana weight 2/sqrt(5).
        assert!((posts[1].weight - 2.0 / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn doc_freq_agrees_with_collection() {
        let (c, idx) = index();
        for (term, _) in c.vocab().iter() {
            assert_eq!(idx.doc_freq(term) as u32, c.doc_freq(term));
        }
    }

    #[test]
    fn totals() {
        let (_, idx) = index();
        assert_eq!(idx.active_terms(), 4);
        assert_eq!(idx.total_postings(), 5);
    }

    #[test]
    fn out_of_vocab_is_empty() {
        let (_, idx) = index();
        assert!(idx.postings(TermId(999)).is_empty());
    }
}
