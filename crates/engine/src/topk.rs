//! Max-score top-k retrieval: the paper's critical statistic (the per-term
//! maximum normalized weight) doubles as the classic query-evaluation
//! pruning bound.
//!
//! For a query `q = (u_1, …, u_r)`, no document can score more than
//! `Σ u_i * mw_i` over any subset of terms, where `mw_i` is term `i`'s
//! maximum normalized weight in the collection. Sorting the query terms
//! by ascending `u_i * mw_i` and keeping suffix sums of the bounds lets
//! term-at-a-time evaluation skip the low-impact terms entirely for
//! documents that cannot reach the current top-k floor (Turtle & Flood's
//! MaxScore, adapted to exhaustive term-at-a-time accumulation).
//!
//! The result is *identical* to [`SearchEngine::search_top_k`]; only the
//! work differs. The `text` bench's `top_10_strategies` group measures
//! the trade-off — on small newsgroup-scale collections (hundreds of
//! documents, short postings lists) the pruning bookkeeping costs more
//! than it saves, and plain accumulation wins; the bound only pays off
//! on long postings lists.

use crate::collection::DocId;
use crate::query::Query;
use crate::search::{SearchEngine, SearchHit};
use std::cmp::Ordering;
use std::collections::HashMap;

impl SearchEngine {
    /// The `k` most similar documents, computed with max-score pruning.
    /// Exact: returns the same hits as [`SearchEngine::search_top_k`].
    pub fn search_top_k_maxscore(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        // Per-term upper bound u_i * mw_i, terms sorted by descending
        // bound so the high-impact terms are accumulated first.
        let mut terms: Vec<(f64, &[crate::index::Posting], f64)> = query
            .terms()
            .iter()
            .map(|&(term, u)| {
                let postings = self.index().postings(term);
                let mw = postings.iter().map(|p| p.weight).fold(0.0f64, f64::max);
                (u, postings, u * mw)
            })
            .filter(|&(_, postings, _)| !postings.is_empty())
            .collect();
        terms.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(Ordering::Equal));

        // Suffix sums: bound_rest[i] = max possible contribution of terms
        // i.. (so a partial score s after terms 0..i can reach at most
        // s + bound_rest[i]).
        let mut bound_rest = vec![0.0; terms.len() + 1];
        for i in (0..terms.len()).rev() {
            bound_rest[i] = bound_rest[i + 1] + terms[i].2;
        }

        // Accumulate high-impact terms; candidates gather partial scores.
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let mut floor = 0.0f64; // k-th best full score so far (lower bound)
        let mut scores: Vec<f64> = Vec::new(); // full-score tracker
        for (i, &(u, postings, _)) in terms.iter().enumerate() {
            // Once even a document containing ALL remaining terms (and
            // nothing so far) cannot reach the floor, documents not yet
            // in the accumulator can never surface: remaining terms only
            // need to *update* existing candidates. `>=` keeps exact ties
            // alive (tie-breaking is by document id, which a skipped
            // document could win).
            let new_docs_possible = acc.len() < k || bound_rest[i] >= floor;
            for p in postings {
                match acc.entry(p.doc.0) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        *e.get_mut() += u * p.weight;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        if new_docs_possible {
                            e.insert(u * p.weight);
                        }
                    }
                }
            }
            // Refresh the floor estimate (k-th largest optimistic-free
            // partial score; partial scores only grow, so this is a valid
            // lower bound on the final k-th best).
            if acc.len() >= k {
                scores.clear();
                scores.extend(acc.values().copied());
                // Partial selection: k-th largest.
                let idx = scores.len() - k;
                scores.select_nth_unstable_by(idx, |a, b| {
                    a.partial_cmp(b).unwrap_or(Ordering::Equal)
                });
                floor = scores[idx];
            }
        }

        let m = crate::search::metrics();
        m.searches.inc();
        m.postings_touched
            .add(terms.iter().map(|&(_, p, _)| p.len() as u64).sum());
        m.docs_scored.add(acc.len() as u64);

        let mut hits: Vec<SearchHit> = acc
            .into_iter()
            .filter(|&(_, sim)| sim > 0.0)
            .map(|(d, sim)| SearchHit { doc: DocId(d), sim })
            .collect();
        hits.sort_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.0.cmp(&b.doc.0))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::weighting::WeightingScheme;
    use seu_text::Analyzer;

    fn engine(docs: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, d) in docs.iter().enumerate() {
            b.add_document(&format!("d{i}"), d);
        }
        SearchEngine::new(b.build())
    }

    fn assert_same_hits(e: &SearchEngine, q: &Query, k: usize) {
        let plain = e.search_top_k(q, k);
        let pruned = e.search_top_k_maxscore(q, k);
        assert_eq!(plain.len(), pruned.len(), "k={k}");
        for (a, b) in plain.iter().zip(&pruned) {
            assert_eq!(a.doc, b.doc, "k={k}");
            assert!((a.sim - b.sim).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn matches_plain_top_k() {
        let e = engine(&[
            "apple banana apple apple",
            "banana cherry",
            "apple cherry cherry",
            "banana banana banana apple",
            "durian elderberry",
            "apple durian",
        ]);
        for text in [
            "apple",
            "apple banana",
            "apple banana cherry",
            "apple banana cherry durian elderberry",
        ] {
            let q = e.collection().query_from_text(text);
            for k in [1, 2, 3, 5, 10] {
                assert_same_hits(&e, &q, k);
            }
        }
    }

    #[test]
    fn empty_cases() {
        let e = engine(&["apple banana"]);
        let q = e.collection().query_from_text("apple");
        assert!(e.search_top_k_maxscore(&q, 0).is_empty());
        assert!(e.search_top_k_maxscore(&Query::new([]), 5).is_empty());
        let unknown = e.collection().query_from_text("zebra");
        assert!(e.search_top_k_maxscore(&unknown, 5).is_empty());
    }

    #[test]
    fn randomized_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let vocab = ["ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"];
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let docs: Vec<String> = (0..rng.gen_range(1..25))
                .map(|_| {
                    (0..rng.gen_range(1..15))
                        .map(|_| vocab[rng.gen_range(0..vocab.len())])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            let e = engine(&refs);
            let n_terms = rng.gen_range(1..5);
            let text = (0..n_terms)
                .map(|_| vocab[rng.gen_range(0..vocab.len())])
                .collect::<Vec<_>>()
                .join(" ");
            let q = e.collection().query_from_text(&text);
            let k = rng.gen_range(1..8);
            let plain = e.search_top_k(&q, k);
            let pruned = e.search_top_k_maxscore(&q, k);
            assert_eq!(plain.len(), pruned.len(), "trial {trial}");
            for (a, b) in plain.iter().zip(&pruned) {
                assert!((a.sim - b.sim).abs() < 1e-12, "trial {trial}");
            }
        }
    }
}
