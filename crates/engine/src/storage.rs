//! Binary persistence of collections.
//!
//! A local search engine survives restarts by persisting its analyzed,
//! weighted collection; the inverted index is rebuilt on load (it is a
//! derived structure and rebuilding is one linear pass). The format is a
//! versioned little-schema binary layout via `bytes` — no external codec.

use crate::collection::{Collection, Document};
use crate::weighting::WeightingScheme;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use seu_text::{AnalyzerConfig, TermId, Vocabulary};

const MAGIC: u32 = 0x5345_5543; // "SEUC"
const VERSION: u16 = 1;

fn put_str(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long to store");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn get_str(buf: &mut impl Buf) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).ok()
}

fn scheme_tag(scheme: WeightingScheme) -> (u8, f64) {
    match scheme {
        WeightingScheme::CosineTf => (0, 0.0),
        WeightingScheme::CosineLogTf => (1, 0.0),
        WeightingScheme::CosineTfIdf => (2, 0.0),
        WeightingScheme::PivotedLogTf { slope } => (3, slope),
    }
}

fn scheme_from_tag(tag: u8, param: f64) -> Option<WeightingScheme> {
    match tag {
        0 => Some(WeightingScheme::CosineTf),
        1 => Some(WeightingScheme::CosineLogTf),
        2 => Some(WeightingScheme::CosineTfIdf),
        3 => Some(WeightingScheme::PivotedLogTf { slope: param }),
        _ => None,
    }
}

impl Collection {
    /// Serializes the collection to a self-contained binary buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        let (tag, param) = scheme_tag(self.scheme());
        buf.put_u8(tag);
        buf.put_f64(param);
        let a = self.analyzer_config();
        buf.put_u8(a.remove_stopwords as u8);
        buf.put_u8(a.stem as u8);
        buf.put_u64(self.raw_bytes());
        buf.put_u64(self.total_tokens());
        buf.put_f64(self.mean_norm());

        let vocab = self.vocab();
        buf.put_u32(vocab.len() as u32);
        for (term, s) in vocab.iter() {
            put_str(&mut buf, s);
            buf.put_u32(self.doc_freq(term));
        }

        buf.put_u32(self.len() as u32);
        for doc in self.docs() {
            put_str(&mut buf, &doc.name);
            buf.put_f64(doc.norm);
            buf.put_u32(doc.len);
            buf.put_u32(doc.terms.len() as u32);
            for &(term, weight) in &doc.terms {
                buf.put_u32(term.0);
                buf.put_f64(weight);
            }
        }
        buf.freeze()
    }

    /// Deserializes a [`Collection::to_bytes`] buffer. Returns `None` on
    /// a truncated, corrupt, or version-mismatched buffer.
    pub fn from_bytes(mut buf: impl Buf) -> Option<Collection> {
        if buf.remaining() < 4 + 2 + 1 + 8 + 8 + 8 + 8 {
            return None;
        }
        if buf.get_u32() != MAGIC {
            return None;
        }
        if buf.get_u16() != VERSION {
            return None;
        }
        let tag = buf.get_u8();
        let param = buf.get_f64();
        let scheme = scheme_from_tag(tag, param)?;
        if buf.remaining() < 2 {
            return None;
        }
        let analyzer = AnalyzerConfig {
            remove_stopwords: buf.get_u8() != 0,
            stem: buf.get_u8() != 0,
        };
        let raw_bytes = buf.get_u64();
        let total_tokens = buf.get_u64();
        let mean_norm = buf.get_f64();

        if buf.remaining() < 4 {
            return None;
        }
        let n_terms = buf.get_u32() as usize;
        let mut vocab = Vocabulary::new();
        let mut doc_freq = Vec::with_capacity(n_terms);
        for i in 0..n_terms {
            let s = get_str(&mut buf)?;
            let id = vocab.intern(&s);
            // Term order must round-trip to keep ids stable.
            if id.index() != i {
                return None;
            }
            if buf.remaining() < 4 {
                return None;
            }
            doc_freq.push(buf.get_u32());
        }

        if buf.remaining() < 4 {
            return None;
        }
        let n_docs = buf.get_u32() as usize;
        let mut docs = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            let name = get_str(&mut buf)?;
            if buf.remaining() < 8 + 4 + 4 {
                return None;
            }
            let norm = buf.get_f64();
            let len = buf.get_u32();
            let n = buf.get_u32() as usize;
            if buf.remaining() < n * 12 {
                return None;
            }
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                let t = buf.get_u32();
                let w = buf.get_f64();
                if t as usize >= n_terms {
                    return None;
                }
                terms.push((TermId(t), w));
            }
            docs.push(Document {
                name,
                terms,
                norm,
                len,
            });
        }
        Some(Collection::from_stored_parts(
            vocab,
            docs,
            scheme,
            doc_freq,
            raw_bytes,
            total_tokens,
            mean_norm,
            analyzer,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::search::SearchEngine;
    use seu_text::Analyzer;

    fn sample(scheme: WeightingScheme) -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), scheme);
        b.add_document("d0", "alpha beta alpha gamma");
        b.add_document("d1", "beta delta");
        b.add_document("d2", "");
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        for scheme in [
            WeightingScheme::CosineTf,
            WeightingScheme::CosineLogTf,
            WeightingScheme::CosineTfIdf,
            WeightingScheme::PivotedLogTf { slope: 0.35 },
        ] {
            let c = sample(scheme);
            let c2 = Collection::from_bytes(c.to_bytes()).expect("valid buffer");
            assert_eq!(c2.len(), c.len());
            assert_eq!(c2.vocab().len(), c.vocab().len());
            assert_eq!(c2.scheme(), c.scheme());
            assert_eq!(c2.raw_bytes(), c.raw_bytes());
            assert_eq!(c2.total_tokens(), c.total_tokens());
            assert!((c2.mean_norm() - c.mean_norm()).abs() < 1e-12);
            assert_eq!(c2.analyzer_config(), c.analyzer_config());
            for (d1, d2) in c.docs().iter().zip(c2.docs()) {
                assert_eq!(d1.name, d2.name);
                assert_eq!(d1.len, d2.len);
                assert_eq!(d1.terms, d2.terms);
            }
            for (term, s) in c.vocab().iter() {
                assert_eq!(c2.vocab().term(term), s);
                assert_eq!(c2.doc_freq(term), c.doc_freq(term));
            }
        }
    }

    #[test]
    fn loaded_engine_answers_identically() {
        let c = sample(WeightingScheme::CosineTf);
        let loaded = Collection::from_bytes(c.to_bytes()).unwrap();
        let e1 = SearchEngine::new(c);
        let e2 = SearchEngine::new(loaded);
        let q1 = e1.collection().query_from_text("alpha beta");
        let q2 = e2.collection().query_from_text("alpha beta");
        let h1 = e1.search_threshold(&q1, 0.1);
        let h2 = e2.search_threshold(&q2, 0.1);
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(&h2) {
            assert_eq!(a.doc, b.doc);
            assert!((a.sim - b.sim).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Collection::from_bytes(&b"nope"[..]).is_none());
        let c = sample(WeightingScheme::CosineTf);
        let bytes = c.to_bytes();
        // Truncation at any point is detected (never panics).
        for cut in [4usize, 10, 20, bytes.len() / 2, bytes.len() - 3] {
            assert!(Collection::from_bytes(&bytes[..cut]).is_none(), "cut={cut}");
        }
        // Wrong magic.
        let mut wrong = bytes.to_vec();
        wrong[0] ^= 0xFF;
        assert!(Collection::from_bytes(&wrong[..]).is_none());
    }

    #[test]
    fn empty_collection_round_trips() {
        let b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        let c = b.build();
        let c2 = Collection::from_bytes(c.to_bytes()).unwrap();
        assert_eq!(c2.len(), 0);
        assert_eq!(c2.vocab().len(), 0);
    }
}
