//! Shared query analysis: translating one broker-global analyzed query
//! into per-collection query vectors.
//!
//! A metasearch broker fronts many collections, each with its own
//! [`Vocabulary`]. Analyzing the query text once per *engine* repeats the
//! expensive part of query processing (tokenization, stopword filtering,
//! stemming, string hashing) `n` times. Instead the broker keeps one
//! global vocabulary covering the union of its engines' terms, analyzes
//! the query once against it, and uses a per-engine [`TermMap`] to
//! translate the resulting `(global term, count)` pairs into each
//! collection's local term ids with nothing but integer lookups.
//!
//! The translation is exact: a term is in the map iff it is in the
//! collection's vocabulary, so the per-engine query vector is identical
//! to what [`Collection::query_from_text`] would have produced.

use crate::collection::Collection;
use crate::query::Query;
use seu_text::{TermId, Vocabulary};
use std::collections::HashMap;

/// Maps broker-global term ids to one collection's local term ids.
///
/// Built once at engine-registration time; query-time lookups are binary
/// searches over a sorted `(global, local)` pair list (cache-friendly and
/// allocation-free).
#[derive(Debug, Clone, Default)]
pub struct TermMap {
    /// `(global term id, local term id)`, sorted by global id.
    pairs: Vec<(u32, TermId)>,
}

impl TermMap {
    /// Builds the map for `collection`, interning every term of its
    /// vocabulary into the broker-global `vocab`.
    pub fn build(global: &mut Vocabulary, collection: &Collection) -> TermMap {
        TermMap::from_vocab(global, collection.vocab())
    }

    /// Builds the map for an arbitrary local vocabulary — e.g. one a
    /// *remote* engine shipped alongside its representative, where the
    /// broker never holds the collection itself. Every term is interned
    /// into the broker-global `vocab`, exactly as registration of a local
    /// engine would.
    pub fn from_vocab(global: &mut Vocabulary, local: &Vocabulary) -> TermMap {
        let mut pairs: Vec<(u32, TermId)> = local
            .iter()
            .map(|(local_id, term)| (global.intern(term).0, local_id))
            .collect();
        pairs.sort_by_key(|&(g, _)| g);
        TermMap { pairs }
    }

    /// Number of mapped terms (the collection's vocabulary size).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The local id of a global term, if the collection knows it.
    pub fn local(&self, global: u32) -> Option<TermId> {
        self.pairs
            .binary_search_by_key(&global, |&(g, _)| g)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Translates `(global term, count)` pairs to local `(term, count)`
    /// pairs, dropping terms the collection does not know.
    pub fn to_local(&self, global_tf: &[(u32, u32)]) -> Vec<(TermId, u32)> {
        global_tf
            .iter()
            .filter_map(|&(g, f)| self.local(g).map(|t| (t, f)))
            .collect()
    }
}

/// Builds a cosine-normalized query vector from explicit term
/// frequencies and collection *statistics* alone — no [`Collection`]
/// required. This is [`Collection::query_from_tf`] with the collection
/// replaced by the three numbers query weighting actually consumes
/// (scheme, document count, per-term document frequency), so a broker
/// can form byte-identical query vectors for a **remote** engine from
/// metadata it shipped.
pub fn weighted_query(
    scheme: crate::weighting::WeightingScheme,
    n_docs: u32,
    doc_freq: impl Fn(TermId) -> u32,
    tf: impl IntoIterator<Item = (TermId, u32)>,
) -> Query {
    let mut weights: Vec<(u32, f64)> = tf
        .into_iter()
        .filter(|&(_, f)| f > 0)
        .map(|(t, f)| (t.0, scheme.weight(f, doc_freq(t), n_docs)))
        .collect();
    weights.sort_by_key(|&(t, _)| t);
    crate::weighting::normalize(&mut weights);
    Query::new(
        weights
            .into_iter()
            .filter(|&(_, w)| w > 0.0)
            .map(|(t, w)| (TermId(t), w)),
    )
}

/// Folds analyzed tokens into `(global term id, count)` pairs against a
/// broker-global vocabulary, dropping tokens no registered collection
/// knows (they cannot contribute to any similarity). Pairs are sorted by
/// global id.
pub fn global_tf(vocab: &Vocabulary, tokens: &[String]) -> Vec<(u32, u32)> {
    let mut tf: HashMap<u32, u32> = HashMap::with_capacity(tokens.len());
    for token in tokens {
        if let Some(id) = vocab.get(token) {
            *tf.entry(id.0).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(u32, u32)> = tf.into_iter().collect();
    pairs.sort_by_key(|&(g, _)| g);
    pairs
}

impl Collection {
    /// Builds a query vector from broker-global `(term, count)` pairs via
    /// this collection's [`TermMap`] — the shared-analysis equivalent of
    /// [`Collection::query_from_text`], with no string processing.
    pub fn query_from_shared(&self, global_tf: &[(u32, u32)], map: &TermMap) -> Query {
        self.query_from_tf(map.to_local(global_tf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::weighting::WeightingScheme;
    use seu_text::Analyzer;

    fn collection(texts: &[&str]) -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&format!("d{i}"), t);
        }
        b.build()
    }

    #[test]
    fn term_map_covers_the_whole_vocabulary() {
        let c = collection(&["apple banana", "banana cherry"]);
        let mut global = Vocabulary::new();
        global.intern("unrelated");
        let map = TermMap::build(&mut global, &c);
        assert_eq!(map.len(), c.vocab().len());
        for (local, term) in c.vocab().iter() {
            let g = global.get(term).unwrap();
            assert_eq!(map.local(g.0), Some(local), "{term}");
        }
        // Terms outside the collection do not resolve.
        assert_eq!(map.local(global.get("unrelated").unwrap().0), None);
    }

    #[test]
    fn shared_query_matches_text_query() {
        let a = collection(&["apple banana apple", "banana cherry"]);
        let b = collection(&["cherry durian", "apple durian durian"]);
        let mut global = Vocabulary::new();
        let map_a = TermMap::build(&mut global, &a);
        let map_b = TermMap::build(&mut global, &b);

        for text in ["apple", "apple banana cherry", "durian zebra", ""] {
            let tokens = Analyzer::paper_default().analyze(text);
            let tf = global_tf(&global, &tokens);
            assert_eq!(a.query_from_shared(&tf, &map_a), a.query_from_text(text));
            assert_eq!(b.query_from_shared(&tf, &map_b), b.query_from_text(text));
        }
    }

    #[test]
    fn global_tf_counts_and_sorts() {
        let c = collection(&["apple banana"]);
        let mut global = Vocabulary::new();
        let _ = TermMap::build(&mut global, &c);
        let tokens: Vec<String> = ["banana", "apple", "banana", "zebra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tf = global_tf(&global, &tokens);
        assert_eq!(tf.len(), 2);
        assert!(tf.windows(2).all(|w| w[0].0 < w[1].0));
        let by_term = |t: &str| {
            let id = global.get(t).unwrap().0;
            tf.iter().find(|&&(g, _)| g == id).unwrap().1
        };
        assert_eq!(by_term("banana"), 2);
        assert_eq!(by_term("apple"), 1);
    }
}
