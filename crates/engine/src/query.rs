//! Query vectors.

use serde::{Deserialize, Serialize};
use seu_text::TermId;

/// A cosine-normalized sparse query vector `q = (u_1, …, u_r)`.
///
/// Built by [`crate::Collection::query_from_text`] (or directly from
/// term/weight pairs); terms are sorted by id and weights are expected to
/// be normalized so that single-term queries carry weight 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    terms: Vec<(TermId, f64)>,
}

impl Query {
    /// Creates a query from `(term, weight)` pairs; sorts by term id and
    /// merges duplicate terms by summing weights.
    pub fn new(terms: impl IntoIterator<Item = (TermId, f64)>) -> Self {
        let mut v: Vec<(TermId, f64)> = terms.into_iter().collect();
        v.sort_by_key(|&(t, _)| t);
        let mut merged: Vec<(TermId, f64)> = Vec::with_capacity(v.len());
        for (t, w) in v {
            match merged.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => merged.push((t, w)),
            }
        }
        Query { terms: merged }
    }

    /// The `(term, weight)` pairs, sorted by term id.
    pub fn terms(&self) -> &[(TermId, f64)] {
        &self.terms
    }

    /// Number of distinct query terms `r`.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no terms (it then matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this is a single-term query (the class for which the paper
    /// proves exact engine identification).
    pub fn is_single_term(&self) -> bool {
        self.terms.len() == 1
    }

    /// The weight of `term` in the query (0 if absent).
    pub fn weight(&self, term: TermId) -> f64 {
        self.terms
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| self.terms[i].1)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_merges() {
        let q = Query::new([(TermId(3), 0.5), (TermId(1), 0.2), (TermId(3), 0.25)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.terms()[0].0, TermId(1));
        assert!((q.weight(TermId(3)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_term_detection() {
        assert!(Query::new([(TermId(0), 1.0)]).is_single_term());
        assert!(!Query::new([(TermId(0), 1.0), (TermId(1), 1.0)]).is_single_term());
        assert!(!Query::new([]).is_single_term());
        assert!(Query::new([]).is_empty());
    }

    #[test]
    fn absent_weight_is_zero() {
        let q = Query::new([(TermId(0), 1.0)]);
        assert_eq!(q.weight(TermId(42)), 0.0);
    }
}
