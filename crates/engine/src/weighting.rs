//! Term weighting schemes.
//!
//! The paper transforms documents and queries "into a vector of terms with
//! weights [Salton & McGill]" and normalizes with the Cosine function. The
//! classic vector-space choices are provided; the reproduction's default is
//! raw term frequency with cosine normalization, and the estimators are
//! exercised under the other schemes in the test suite to show they are
//! weighting-agnostic.

use serde::{Deserialize, Serialize};

/// How raw term frequencies become pre-normalization weights.
///
/// The cosine schemes divide each document vector by its Euclidean norm;
/// the pivoted scheme divides by the *pivoted* norm
/// `(1 - slope) * pivot + slope * |d|` (Singhal, Buckley & Mitra, SIGIR
/// 1996 — reference \[16\] of the paper, which notes its single-term
/// identification argument "applies to other similarity functions such
/// as \[16\]"), where `pivot` is the collection's mean document norm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WeightingScheme {
    /// `w = tf` — raw term frequency (the reproduction default).
    #[default]
    CosineTf,
    /// `w = 1 + ln(tf)` — dampened term frequency.
    CosineLogTf,
    /// `w = tf * ln(n / df)` — tf–idf; `df` is the collection document
    /// frequency, `n` the collection size.
    CosineTfIdf,
    /// `w = 1 + ln(tf)`, normalized by the pivoted document norm with the
    /// given slope (0 = every document normalized by the collection mean
    /// norm, 1 = plain cosine). Singhal et al. recommend slopes around
    /// 0.2–0.75 depending on the collection.
    PivotedLogTf {
        /// Interpolation between pivot (0) and the own norm (1).
        slope: f64,
    },
}

impl WeightingScheme {
    /// Pre-normalization weight for a term with frequency `tf` (> 0) in a
    /// vector, given the collection statistics `df` (document frequency of
    /// the term) and `n` (number of documents).
    pub fn weight(&self, tf: u32, df: u32, n: u32) -> f64 {
        debug_assert!(tf > 0, "weight of absent term");
        match self {
            WeightingScheme::CosineTf => tf as f64,
            WeightingScheme::CosineLogTf | WeightingScheme::PivotedLogTf { .. } => {
                1.0 + (tf as f64).ln()
            }
            WeightingScheme::CosineTfIdf => {
                if df == 0 || n == 0 {
                    0.0
                } else {
                    tf as f64 * (n as f64 / df as f64).ln()
                }
            }
        }
    }

    /// Whether the scheme needs collection-wide statistics (`df`, `n`, or
    /// the mean document norm).
    pub fn needs_collection_stats(&self) -> bool {
        matches!(
            self,
            WeightingScheme::CosineTfIdf | WeightingScheme::PivotedLogTf { .. }
        )
    }

    /// The divisor used to normalize a document whose Euclidean norm is
    /// `norm`, given the collection's mean document norm `pivot`.
    ///
    /// Cosine schemes return `norm`; the pivoted scheme returns
    /// `(1 - slope) * pivot + slope * norm`. Returns 0 for an empty
    /// vector under cosine schemes (callers leave such vectors at zero).
    pub fn norm_divisor(&self, norm: f64, pivot: f64) -> f64 {
        match *self {
            WeightingScheme::PivotedLogTf { slope } => (1.0 - slope) * pivot + slope * norm,
            _ => norm,
        }
    }
}

/// Normalizes a weight vector in place by its Euclidean norm; returns the
/// norm. A zero vector is left untouched and 0 returned.
pub fn normalize(weights: &mut [(u32, f64)]) -> f64 {
    let norm = weights.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if norm > 0.0 {
        for (_, w) in weights.iter_mut() {
            *w /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_is_identity() {
        assert_eq!(WeightingScheme::CosineTf.weight(3, 10, 100), 3.0);
    }

    #[test]
    fn logtf_dampens() {
        let s = WeightingScheme::CosineLogTf;
        assert_eq!(s.weight(1, 1, 1), 1.0);
        assert!((s.weight(10, 1, 1) - (1.0 + 10f64.ln())).abs() < 1e-12);
        assert!(s.weight(100, 1, 1) < 100.0);
    }

    #[test]
    fn tfidf_zero_for_universal_terms() {
        let s = WeightingScheme::CosineTfIdf;
        assert_eq!(s.weight(5, 100, 100), 0.0);
        assert!(s.weight(5, 1, 100) > s.weight(5, 50, 100));
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![(0u32, 3.0), (1, 4.0)];
        let norm = normalize(&mut v);
        assert_eq!(norm, 5.0);
        assert!((v[0].1 - 0.6).abs() < 1e-12);
        assert!((v[1].1 - 0.8).abs() < 1e-12);
        let check: f64 = v.iter().map(|&(_, w)| w * w).sum();
        assert!((check - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector() {
        let mut v = vec![(0u32, 0.0)];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v[0].1, 0.0);
    }

    #[test]
    fn pivoted_divisor_interpolates() {
        let s = WeightingScheme::PivotedLogTf { slope: 0.25 };
        // (1 - 0.25) * 10 + 0.25 * 2 = 8.
        assert!((s.norm_divisor(2.0, 10.0) - 8.0).abs() < 1e-12);
        // slope 1 degenerates to cosine.
        let cos = WeightingScheme::PivotedLogTf { slope: 1.0 };
        assert_eq!(cos.norm_divisor(2.0, 10.0), 2.0);
        // slope 0 normalizes everything by the pivot.
        let flat = WeightingScheme::PivotedLogTf { slope: 0.0 };
        assert_eq!(flat.norm_divisor(2.0, 10.0), 10.0);
        // Cosine schemes ignore the pivot.
        assert_eq!(WeightingScheme::CosineTf.norm_divisor(3.0, 10.0), 3.0);
    }

    #[test]
    fn pivoted_weight_is_log_tf() {
        let s = WeightingScheme::PivotedLogTf { slope: 0.3 };
        assert_eq!(s.weight(1, 5, 100), 1.0);
        assert!((s.weight(8, 5, 100) - (1.0 + 8f64.ln())).abs() < 1e-12);
        assert!(s.needs_collection_stats());
    }
}
