//! Query evaluation: threshold search, top-k search, and exact usefulness.

use crate::collection::{Collection, DocId, Fingerprint};
use crate::index::InvertedIndex;
use crate::query::Query;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process; each scoring pass then
/// costs three relaxed atomic adds.
pub(crate) struct EngineMetrics {
    pub(crate) searches: Arc<seu_obs::Counter>,
    pub(crate) docs_scored: Arc<seu_obs::Counter>,
    pub(crate) postings_touched: Arc<seu_obs::Counter>,
}

pub(crate) fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        searches: seu_obs::counter("engine_searches_total"),
        docs_scored: seu_obs::counter("engine_docs_scored_total"),
        postings_touched: seu_obs::counter("engine_postings_touched_total"),
    })
}

/// Forces creation of the engine's instruments so snapshots and
/// expositions include the whole `engine_*` family — zero-valued if the
/// process never searched — instead of a family that appears only after
/// the first call touches it.
pub fn register_metrics() {
    let _ = metrics();
}

/// One retrieved document with its global (cosine) similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// The document.
    pub doc: DocId,
    /// Cosine similarity with the query, in `[0, 1]` for non-negative
    /// weights.
    pub sim: f64,
}

/// Exact usefulness of a database for a query at a threshold — the ground
/// truth the estimators are judged against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueUsefulness {
    /// `NoDoc(T, q, D)`: number of documents with `sim > T`.
    pub no_doc: u64,
    /// `AvgSim(T, q, D)`: mean similarity of those documents (0 when
    /// `no_doc == 0`).
    pub avg_sim: f64,
    /// Largest similarity of any document with the query (`max_sim_i` in
    /// the paper's single-term analysis); 0 when nothing matches.
    pub max_sim: f64,
}

/// A local search engine: a collection plus its inverted index.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    collection: Collection,
    index: InvertedIndex,
    /// Content fingerprint, computed once at index-build time (the
    /// collection is immutable, so indexing a new snapshot is the only
    /// way content can change — and that recomputes this).
    fingerprint: Fingerprint,
}

impl SearchEngine {
    /// Indexes a collection.
    pub fn new(collection: Collection) -> Self {
        let index = InvertedIndex::build(&collection);
        let fingerprint = collection.fingerprint();
        SearchEngine {
            collection,
            index,
            fingerprint,
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The collection's content fingerprint (cached at construction, so
    /// registry staleness sweeps cost O(1) per engine).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Scores every document sharing at least one term with the query
    /// (term-at-a-time accumulation). Returned in document-id order.
    fn accumulate(&self, query: &Query) -> Vec<(DocId, f64)> {
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for &(term, u) in query.terms() {
            for p in self.index.postings(term) {
                acc.push((p.doc.0, u * p.weight));
            }
        }
        acc.sort_by_key(|&(d, _)| d);
        let postings = acc.len() as u64;
        let mut out: Vec<(DocId, f64)> = Vec::with_capacity(acc.len());
        for (d, s) in acc {
            match out.last_mut() {
                Some(last) if last.0 .0 == d => last.1 += s,
                _ => out.push((DocId(d), s)),
            }
        }
        let m = metrics();
        m.searches.inc();
        m.postings_touched.add(postings);
        m.docs_scored.add(out.len() as u64);
        out
    }

    /// All documents with `sim > threshold`, sorted by descending
    /// similarity (ties broken by document id, ascending).
    pub fn search_threshold(&self, query: &Query, threshold: f64) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .accumulate(query)
            .into_iter()
            .filter(|&(_, s)| s > threshold)
            .map(|(doc, sim)| SearchHit { doc, sim })
            .collect();
        hits.sort_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.0.cmp(&b.doc.0))
        });
        hits
    }

    /// The `k` most similar documents (similarity > 0), best first.
    pub fn search_top_k(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        // Min-heap of the current best k, keyed by (sim, Reverse(doc)).
        #[derive(PartialEq)]
        struct Entry(f64, u32);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Smaller sim first; for equal sims, larger doc id first,
                // so it is evicted before a smaller id.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(Ordering::Equal)
                    .then(self.1.cmp(&other.1))
                    .reverse()
            }
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
        for (doc, sim) in self.accumulate(query) {
            if sim <= 0.0 {
                continue;
            }
            heap.push(std::cmp::Reverse(Entry(sim, doc.0)));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|std::cmp::Reverse(Entry(sim, d))| SearchHit { doc: DocId(d), sim })
            .collect();
        hits.sort_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.0.cmp(&b.doc.0))
        });
        hits
    }

    /// Computes the exact `(NoDoc, AvgSim, max_sim)` of this database for
    /// the query at `threshold` — Equations (1) and (2) of the paper,
    /// evaluated by brute force over the index.
    pub fn true_usefulness(&self, query: &Query, threshold: f64) -> TrueUsefulness {
        let mut no_doc = 0u64;
        let mut sim_sum = 0.0;
        let mut max_sim = 0.0f64;
        for (_, sim) in self.accumulate(query) {
            if sim > threshold {
                no_doc += 1;
                sim_sum += sim;
            }
            if sim > max_sim {
                max_sim = sim;
            }
        }
        TrueUsefulness {
            no_doc,
            avg_sim: if no_doc > 0 {
                sim_sum / no_doc as f64
            } else {
                0.0
            },
            max_sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::weighting::WeightingScheme;
    use seu_text::Analyzer;

    fn engine() -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "apple banana apple apple");
        b.add_document("d1", "banana cherry");
        b.add_document("d2", "apple cherry cherry");
        b.add_document("d3", "durian");
        SearchEngine::new(b.build())
    }

    /// Brute-force similarity for cross-checking.
    fn brute_sim(e: &SearchEngine, q: &Query, d: DocId) -> f64 {
        q.terms()
            .iter()
            .map(|&(t, u)| u * e.collection().doc(d).weight(t))
            .sum()
    }

    #[test]
    fn accumulation_matches_brute_force() {
        let e = engine();
        let q = e.collection().query_from_text("apple cherry");
        for i in 0..4 {
            let d = DocId(i);
            let expected = brute_sim(&e, &q, d);
            let got = e
                .search_threshold(&q, -1.0)
                .into_iter()
                .find(|h| h.doc == d)
                .map(|h| h.sim)
                .unwrap_or(0.0);
            assert!((got - expected).abs() < 1e-12, "doc {i}");
        }
    }

    #[test]
    fn threshold_filters_strictly() {
        let e = engine();
        let q = e.collection().query_from_text("apple");
        let all = e.search_threshold(&q, 0.0);
        assert_eq!(all.len(), 2); // d0 and d2 contain apple.
        let top_sim = all[0].sim;
        // Strict inequality: threshold exactly at the top similarity
        // excludes it.
        assert!(e.search_threshold(&q, top_sim).is_empty());
    }

    #[test]
    fn hits_sorted_descending() {
        let e = engine();
        let q = e.collection().query_from_text("apple banana cherry");
        let hits = e.search_threshold(&q, 0.0);
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
    }

    #[test]
    fn top_k_matches_threshold_search_prefix() {
        let e = engine();
        let q = e.collection().query_from_text("apple banana cherry");
        let all = e.search_threshold(&q, 0.0);
        for k in 0..=all.len() + 1 {
            let top = e.search_top_k(&q, k);
            assert_eq!(top.len(), k.min(all.len()), "k={k}");
            for (a, b) in top.iter().zip(all.iter()) {
                assert_eq!(a.doc, b.doc, "k={k}");
                assert!((a.sim - b.sim).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn true_usefulness_counts_and_averages() {
        let e = engine();
        let q = e.collection().query_from_text("apple");
        let hits = e.search_threshold(&q, 0.0);
        let t = e.true_usefulness(&q, 0.0);
        assert_eq!(t.no_doc, hits.len() as u64);
        let mean: f64 = hits.iter().map(|h| h.sim).sum::<f64>() / hits.len() as f64;
        assert!((t.avg_sim - mean).abs() < 1e-12);
        assert!((t.max_sim - hits[0].sim).abs() < 1e-12);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let e = engine();
        let q = Query::new([]);
        assert!(e.search_threshold(&q, 0.0).is_empty());
        let t = e.true_usefulness(&q, 0.0);
        assert_eq!(t.no_doc, 0);
        assert_eq!(t.avg_sim, 0.0);
        assert_eq!(t.max_sim, 0.0);
    }

    #[test]
    fn similarities_bounded_by_one() {
        let e = engine();
        for text in ["apple", "apple banana", "apple banana cherry durian"] {
            let q = e.collection().query_from_text(text);
            for h in e.search_threshold(&q, -1.0) {
                assert!(h.sim <= 1.0 + 1e-12 && h.sim >= 0.0, "{text}: {}", h.sim);
            }
        }
    }

    #[test]
    fn identical_doc_and_query_similarity_is_one() {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d", "alpha beta gamma");
        let e = SearchEngine::new(b.build());
        let q = e.collection().query_from_text("alpha beta gamma");
        let t = e.true_usefulness(&q, 0.0);
        assert!((t.max_sim - 1.0).abs() < 1e-12);
    }
}
