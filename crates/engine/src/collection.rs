//! Document collections: the database `D` of a local search engine.

use crate::query::Query;
use crate::weighting::WeightingScheme;
use serde::{Deserialize, Serialize};
use seu_text::{Analyzer, AnalyzerConfig, TermId, Vocabulary};
use std::collections::HashMap;

/// Dense identifier of a document within one [`Collection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One indexed document: a cosine-normalized sparse term vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// External name (file name, message id, …).
    pub name: String,
    /// `(term, normalized weight)`, sorted by term id. Under the cosine
    /// schemes the weights have unit Euclidean norm (unless the document
    /// is empty); under pivoted normalization short documents exceed it
    /// and long documents fall below it, by design.
    pub terms: Vec<(TermId, f64)>,
    /// Euclidean norm of the pre-normalization weight vector.
    pub norm: f64,
    /// Token count after analysis (document length).
    pub len: u32,
}

impl Document {
    /// Normalized weight of `term` in this document (0 if absent).
    pub fn weight(&self, term: TermId) -> f64 {
        self.terms
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| self.terms[i].1)
            .unwrap_or(0.0)
    }
}

/// A cheap content fingerprint of a [`Collection`]: document count,
/// total raw bytes, and a rolling hash over every document's name and
/// weighted term vector. Two collections with the same fingerprint hold
/// the same indexed content for all practical purposes; any document
/// added, removed, or re-weighted changes it.
///
/// This is the broker's staleness signal: a registry records the
/// fingerprint of the collection a representative was built from and
/// compares it against the engine's current fingerprint to decide
/// whether the representative still describes the engine
/// (`Broker::refresh_if_stale` in `seu-metasearch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Number of documents.
    pub n_docs: u64,
    /// Total bytes of raw text ingested.
    pub raw_bytes: u64,
    /// FNV-1a rolling hash over document names and term vectors.
    pub hash: u64,
}

impl Fingerprint {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    fn fold(hash: u64, bytes: &[u8]) -> u64 {
        bytes.iter().fold(hash, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(Self::FNV_PRIME)
        })
    }
}

/// An analyzed, weighted, cosine-normalized document collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collection {
    vocab: Vocabulary,
    docs: Vec<Document>,
    scheme: WeightingScheme,
    /// Document frequency per term (indexed by `TermId`).
    doc_freq: Vec<u32>,
    /// Total bytes of raw text ingested (for the §3.2 size accounting).
    raw_bytes: u64,
    /// Total analyzed tokens across all documents (collection length in
    /// words; CORI's `cw` statistic).
    total_tokens: u64,
    /// Mean Euclidean norm of the non-empty documents (the pivot of
    /// pivoted normalization).
    mean_norm: f64,
    /// The analysis pipeline the documents were built with — queries must
    /// replicate it (a stemmed index needs stemmed queries).
    analyzer: AnalyzerConfig,
}

impl Collection {
    /// Number of documents `n`.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The term dictionary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The weighting scheme documents were built with.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// All documents, indexed by [`DocId`].
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// One document.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: TermId) -> u32 {
        self.doc_freq[term.index()]
    }

    /// Total bytes of raw text ingested.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Total analyzed tokens across all documents.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Mean Euclidean norm of the non-empty documents — the pivot of
    /// [`WeightingScheme::PivotedLogTf`]; 0 for an empty collection.
    pub fn mean_norm(&self) -> f64 {
        self.mean_norm
    }

    /// The analysis pipeline configuration documents were built with.
    pub fn analyzer_config(&self) -> AnalyzerConfig {
        self.analyzer
    }

    /// Computes the collection's content [`Fingerprint`] in one pass over
    /// the documents (O(total postings)). Collections are immutable, so
    /// callers that need repeated comparisons should compute this once
    /// and cache it — [`SearchEngine`](crate::SearchEngine) does exactly
    /// that at index-build time.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut hash = Fingerprint::FNV_OFFSET;
        for doc in &self.docs {
            hash = Fingerprint::fold(hash, doc.name.as_bytes());
            hash = Fingerprint::fold(hash, &doc.len.to_le_bytes());
            for &(term, weight) in &doc.terms {
                hash = Fingerprint::fold(hash, &term.0.to_le_bytes());
                hash = Fingerprint::fold(hash, &weight.to_bits().to_le_bytes());
            }
        }
        Fingerprint {
            n_docs: self.docs.len() as u64,
            raw_bytes: self.raw_bytes,
            hash,
        }
    }

    /// Reassembles a collection from its stored parts (the storage
    /// module's deserializer; not for general construction — invariants
    /// are the serializer's responsibility).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_stored_parts(
        vocab: Vocabulary,
        docs: Vec<Document>,
        scheme: WeightingScheme,
        doc_freq: Vec<u32>,
        raw_bytes: u64,
        total_tokens: u64,
        mean_norm: f64,
        analyzer: AnalyzerConfig,
    ) -> Collection {
        Collection {
            vocab,
            docs,
            scheme,
            doc_freq,
            raw_bytes,
            total_tokens,
            mean_norm,
            analyzer,
        }
    }

    /// Builds a query vector from text with an *explicit* analyzer
    /// (normally use [`Collection::query_from_text`], which replicates
    /// the pipeline the documents were built with). Terms unknown to the
    /// collection are dropped (they cannot contribute to any similarity
    /// within it).
    pub fn query_from_text_with(&self, analyzer: &Analyzer, text: &str) -> Query {
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        for token in analyzer.analyze(text) {
            if let Some(id) = self.vocab.get(&token) {
                *tf.entry(id).or_insert(0) += 1;
            }
        }
        self.query_from_tf(tf)
    }

    /// Builds a query with the same analysis pipeline the documents were
    /// built with (a stemmed index gets a stemmed query).
    pub fn query_from_text(&self, text: &str) -> Query {
        self.query_from_text_with(&Analyzer::new(self.analyzer), text)
    }

    /// Builds a query from explicit term frequencies.
    ///
    /// Queries are always cosine-normalized (unit norm), including under
    /// pivoted document normalization — pivoting corrects for *document*
    /// length bias and does not apply to queries (Singhal et al.).
    pub fn query_from_tf(&self, tf: impl IntoIterator<Item = (TermId, u32)>) -> Query {
        crate::shared::weighted_query(
            self.scheme,
            self.docs.len() as u32,
            |t| self.doc_freq(t),
            tf,
        )
    }
}

/// Incremental builder: add raw documents, then [`CollectionBuilder::build`].
#[derive(Debug)]
pub struct CollectionBuilder {
    analyzer: Analyzer,
    scheme: WeightingScheme,
    vocab: Vocabulary,
    /// Per document: name, term frequencies, raw text length.
    raw: Vec<(String, HashMap<TermId, u32>, usize)>,
}

impl CollectionBuilder {
    /// Creates a builder with the given analysis pipeline and weighting.
    pub fn new(analyzer: Analyzer, scheme: WeightingScheme) -> Self {
        CollectionBuilder {
            analyzer,
            scheme,
            vocab: Vocabulary::new(),
            raw: Vec::new(),
        }
    }

    /// Analyzes and stages one document.
    pub fn add_document(&mut self, name: &str, text: &str) -> DocId {
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        for token in self.analyzer.analyze(text) {
            let id = self.vocab.intern(&token);
            *tf.entry(id).or_insert(0) += 1;
        }
        let id = DocId(u32::try_from(self.raw.len()).expect("too many documents"));
        self.raw.push((name.to_string(), tf, text.len()));
        id
    }

    /// Stages one document from precomputed term tokens (used by the
    /// synthetic corpus generator, which emits tokens directly).
    pub fn add_tokens<S: AsRef<str>>(&mut self, name: &str, tokens: &[S]) -> DocId {
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        let mut bytes = 0usize;
        for token in tokens {
            let token = token.as_ref();
            bytes += token.len() + 1;
            let id = self.vocab.intern(token);
            *tf.entry(id).or_insert(0) += 1;
        }
        let id = DocId(u32::try_from(self.raw.len()).expect("too many documents"));
        self.raw.push((name.to_string(), tf, bytes));
        id
    }

    /// Number of staged documents.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether no documents are staged.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Computes collection-wide statistics, weights and normalizes every
    /// document, and freezes the collection.
    pub fn build(self) -> Collection {
        let n = self.raw.len() as u32;
        let mut doc_freq = vec![0u32; self.vocab.len()];
        for (_, tf, _) in &self.raw {
            for &t in tf.keys() {
                doc_freq[t.index()] += 1;
            }
        }
        // First pass: raw weights and Euclidean norms (the pivoted scheme
        // needs the mean norm before any document can be normalized).
        let mut raw_bytes = 0u64;
        let mut total_tokens = 0u64;
        let mut norm_sum = 0.0;
        let mut non_empty = 0u64;
        // (name, raw weights, norm, token count)
        type Staged = (String, Vec<(u32, f64)>, f64, u32);
        let staged: Vec<Staged> = self
            .raw
            .into_iter()
            .map(|(name, tf, bytes)| {
                raw_bytes += bytes as u64;
                let len: u32 = tf.values().sum();
                total_tokens += len as u64;
                let mut weights: Vec<(u32, f64)> = tf
                    .into_iter()
                    .map(|(t, f)| (t.0, self.scheme.weight(f, doc_freq[t.index()], n)))
                    .collect();
                weights.sort_by_key(|&(t, _)| t);
                let norm = weights.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                if norm > 0.0 {
                    norm_sum += norm;
                    non_empty += 1;
                }
                (name, weights, norm, len)
            })
            .collect();
        let mean_norm = if non_empty > 0 {
            norm_sum / non_empty as f64
        } else {
            0.0
        };
        // Second pass: divide by the scheme's norm divisor.
        let docs = staged
            .into_iter()
            .map(|(name, mut weights, norm, len)| {
                let divisor = self.scheme.norm_divisor(norm, mean_norm);
                if divisor > 0.0 {
                    for (_, w) in weights.iter_mut() {
                        *w /= divisor;
                    }
                } else {
                    weights.clear();
                }
                Document {
                    name,
                    terms: weights
                        .into_iter()
                        .filter(|&(_, w)| w > 0.0)
                        .map(|(t, w)| (TermId(t), w))
                        .collect(),
                    norm,
                    len,
                }
            })
            .collect();
        Collection {
            vocab: self.vocab,
            docs,
            scheme: self.scheme,
            doc_freq,
            raw_bytes,
            total_tokens,
            mean_norm,
            analyzer: self.analyzer.config(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "apple banana apple");
        b.add_document("d1", "banana cherry");
        b.add_document("d2", "the of and"); // all stopwords -> empty doc
        b.build()
    }

    #[test]
    fn builds_normalized_vectors() {
        let c = tiny();
        assert_eq!(c.len(), 3);
        let d0 = c.doc(DocId(0));
        // tf: apple 2, banana 1 -> norm sqrt(5).
        assert!((d0.norm - 5f64.sqrt()).abs() < 1e-12);
        let sq: f64 = d0.terms.iter().map(|&(_, w)| w * w).sum();
        assert!((sq - 1.0).abs() < 1e-12);
        assert_eq!(d0.len, 3);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let c = tiny();
        let apple = c.vocab().get("apple").unwrap();
        let banana = c.vocab().get("banana").unwrap();
        assert_eq!(c.doc_freq(apple), 1);
        assert_eq!(c.doc_freq(banana), 2);
    }

    #[test]
    fn empty_document_is_kept_with_zero_vector() {
        let c = tiny();
        let d2 = c.doc(DocId(2));
        assert!(d2.terms.is_empty());
        assert_eq!(d2.norm, 0.0);
        assert_eq!(d2.len, 0);
    }

    #[test]
    fn query_normalization_single_term_weight_is_one() {
        // Section 3.1: a single-term query has normalized weight 1.
        let c = tiny();
        let q = c.query_from_text("apple");
        assert_eq!(q.terms().len(), 1);
        assert!((q.terms()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_drops_unknown_terms() {
        let c = tiny();
        let q = c.query_from_text("apple zebra");
        assert_eq!(q.terms().len(), 1);
        assert!((q.terms()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_weights_are_cosine_normalized() {
        let c = tiny();
        let q = c.query_from_text("apple banana banana");
        let sq: f64 = q.terms().iter().map(|&(_, w)| w * w).sum();
        assert!((sq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn document_weight_lookup() {
        let c = tiny();
        let apple = c.vocab().get("apple").unwrap();
        let cherry = c.vocab().get("cherry").unwrap();
        assert!(c.doc(DocId(0)).weight(apple) > 0.0);
        assert_eq!(c.doc(DocId(0)).weight(cherry), 0.0);
    }

    #[test]
    fn tfidf_build_zeroes_universal_terms() {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTfIdf);
        b.add_document("d0", "common alpha");
        b.add_document("d1", "common beta");
        let c = b.build();
        let common = c.vocab().get("common").unwrap();
        // idf = ln(2/2) = 0 -> weight filtered out of vectors.
        assert_eq!(c.doc(DocId(0)).weight(common), 0.0);
        assert_eq!(c.doc(DocId(0)).terms.len(), 1);
    }

    #[test]
    fn stemmed_collections_stem_their_queries() {
        let mut b = CollectionBuilder::new(
            Analyzer::new(seu_text::AnalyzerConfig {
                remove_stopwords: true,
                stem: true,
            }),
            WeightingScheme::CosineTf,
        );
        b.add_document("d0", "btree indexes win for range scans");
        let c = b.build();
        // The vocabulary holds stems; an unstemmed surface-form query
        // must still resolve because query_from_text replicates the
        // document pipeline.
        assert!(c.vocab().get("index").is_some());
        assert!(c.vocab().get("indexes").is_none());
        let q = c.query_from_text("indexes scanning");
        assert_eq!(q.len(), 2, "both stems resolve");
        assert!(c.analyzer_config().stem);
    }

    #[test]
    fn pivoted_normalization_favors_short_documents() {
        let mut b = CollectionBuilder::new(
            Analyzer::paper_default(),
            WeightingScheme::PivotedLogTf { slope: 0.3 },
        );
        b.add_document("short", "apple");
        b.add_document(
            "long",
            "apple banana cherry durian elderberry fig grape honeydew",
        );
        let c = b.build();
        assert!(c.mean_norm() > 0.0);
        let apple = c.vocab().get("apple").unwrap();
        let w_short = c.doc(DocId(0)).weight(apple);
        let w_long = c.doc(DocId(1)).weight(apple);
        // Under plain cosine the short doc would score exactly 1; pivoting
        // pulls it toward the pivot, so it scores above its cosine-relative
        // share but the ordering short > long must hold.
        assert!(w_short > w_long);
        // The pivoted weight differs from the cosine weight.
        let sq: f64 = c.doc(DocId(0)).terms.iter().map(|&(_, w)| w * w).sum();
        assert!((sq - 1.0).abs() > 1e-6, "short doc should not be unit-norm");
    }

    #[test]
    fn pivoted_slope_one_is_cosine_log_tf() {
        let texts = ["apple banana apple", "banana cherry", "apple cherry cherry"];
        let build = |scheme| {
            let mut b = CollectionBuilder::new(Analyzer::paper_default(), scheme);
            for (i, t) in texts.iter().enumerate() {
                b.add_document(&format!("d{i}"), t);
            }
            b.build()
        };
        let pivoted = build(WeightingScheme::PivotedLogTf { slope: 1.0 });
        let cosine = build(WeightingScheme::CosineLogTf);
        for (dp, dc) in pivoted.docs().iter().zip(cosine.docs()) {
            assert_eq!(dp.terms.len(), dc.terms.len());
            for (a, b) in dp.terms.iter().zip(&dc.terms) {
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Any added document changes the fingerprint.
        let mut grown =
            CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        grown.add_document("d0", "apple banana apple");
        grown.add_document("d1", "banana cherry");
        grown.add_document("d2", "the of and");
        grown.add_document("d3", "quantum entanglement");
        let grown = grown.build();
        let fp = grown.fingerprint();
        assert_ne!(a.fingerprint(), fp);
        assert_eq!(fp.n_docs, 4);
        assert!(fp.raw_bytes > a.fingerprint().raw_bytes);

        // Same shape, different content: counts match, hash differs.
        let mut renamed =
            CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        renamed.add_document("x0", "apple banana apple");
        renamed.add_document("d1", "banana cherry");
        renamed.add_document("d2", "the of and");
        let renamed = renamed.build();
        assert_eq!(renamed.fingerprint().n_docs, a.fingerprint().n_docs);
        assert_ne!(renamed.fingerprint().hash, a.fingerprint().hash);
    }

    #[test]
    fn total_tokens_counts_analyzed_tokens() {
        let c = tiny();
        // d0: 3 tokens, d1: 2, d2: 0 (stopwords removed).
        assert_eq!(c.total_tokens(), 5);
    }

    #[test]
    fn add_tokens_matches_add_document() {
        let mut b1 = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b1.add_document("d", "apple banana apple");
        let c1 = b1.build();
        let mut b2 = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b2.add_tokens("d", &["apple", "banana", "apple"]);
        let c2 = b2.build();
        assert_eq!(c1.doc(DocId(0)).terms.len(), c2.doc(DocId(0)).terms.len());
        assert!((c1.doc(DocId(0)).norm - c2.doc(DocId(0)).norm).abs() < 1e-12);
    }
}
