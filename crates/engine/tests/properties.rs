//! Property-based tests for the vector-space engine.

use proptest::prelude::*;
use seu_engine::{Collection, CollectionBuilder, Query, SearchEngine, WeightingScheme};
use seu_text::Analyzer;

fn arb_docs() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop::sample::select(vec![
        "ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen", "ibis", "jay",
    ]);
    prop::collection::vec(
        prop::collection::vec(word.prop_map(String::from), 0..30),
        1..20,
    )
}

fn build(docs: &[Vec<String>], scheme: WeightingScheme) -> Collection {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), scheme);
    for (i, tokens) in docs.iter().enumerate() {
        b.add_tokens(&format!("d{i}"), tokens);
    }
    b.build()
}

fn arb_query_words() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec!["ant", "bee", "cat", "dog", "eel", "zebra"])
            .prop_map(String::from),
        1..5,
    )
}

fn query_of(c: &Collection, words: &[String]) -> Query {
    use std::collections::HashMap;
    let mut tf: HashMap<seu_text::TermId, u32> = HashMap::new();
    for w in words {
        if let Some(id) = c.vocab().get(w) {
            *tf.entry(id).or_insert(0) += 1;
        }
    }
    c.query_from_tf(tf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cosine documents have unit norm (or are empty).
    #[test]
    fn cosine_docs_are_unit_norm(docs in arb_docs()) {
        let c = build(&docs, WeightingScheme::CosineTf);
        for doc in c.docs() {
            let sq: f64 = doc.terms.iter().map(|&(_, w)| w * w).sum();
            prop_assert!(doc.terms.is_empty() || (sq - 1.0).abs() < 1e-9);
        }
    }

    /// All similarities are in [0, 1] under cosine weighting, and the
    /// engine's max_sim bounds every hit.
    #[test]
    fn similarities_bounded(docs in arb_docs(), qw in arb_query_words()) {
        let c = build(&docs, WeightingScheme::CosineTf);
        let engine = SearchEngine::new(c.clone());
        let q = query_of(&c, &qw);
        let truth = engine.true_usefulness(&q, 0.0);
        for hit in engine.search_threshold(&q, -1.0) {
            prop_assert!(hit.sim >= -1e-12 && hit.sim <= 1.0 + 1e-9);
            prop_assert!(hit.sim <= truth.max_sim + 1e-12);
        }
    }

    /// Threshold search returns exactly the hits above the threshold,
    /// and NoDoc is monotone in the threshold.
    #[test]
    fn threshold_search_consistent(docs in arb_docs(), qw in arb_query_words(), t in 0.0f64..1.0) {
        let c = build(&docs, WeightingScheme::CosineTf);
        let engine = SearchEngine::new(c.clone());
        let q = query_of(&c, &qw);
        let hits = engine.search_threshold(&q, t);
        for h in &hits {
            prop_assert!(h.sim > t);
        }
        let all = engine.search_threshold(&q, 0.0);
        prop_assert!(hits.len() <= all.len());
        prop_assert_eq!(hits.len() as u64, engine.true_usefulness(&q, t).no_doc);
    }

    /// Top-k returns the k best hits of the full ranking.
    #[test]
    fn top_k_is_a_prefix(docs in arb_docs(), qw in arb_query_words(), k in 0usize..10) {
        let c = build(&docs, WeightingScheme::CosineTf);
        let engine = SearchEngine::new(c.clone());
        let q = query_of(&c, &qw);
        let all = engine.search_threshold(&q, 0.0);
        let top = engine.search_top_k(&q, k);
        prop_assert_eq!(top.len(), k.min(all.len()));
        for (a, b) in top.iter().zip(all.iter()) {
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    /// The inverted index agrees with the documents.
    #[test]
    fn index_matches_documents(docs in arb_docs()) {
        let c = build(&docs, WeightingScheme::CosineTf);
        let engine = SearchEngine::new(c.clone());
        let mut postings_total = 0;
        for (term, _) in c.vocab().iter() {
            for p in engine.index().postings(term) {
                let w = c.doc(p.doc).weight(term);
                prop_assert!((w - p.weight).abs() < 1e-12);
                postings_total += 1;
            }
        }
        let doc_terms: usize = c.docs().iter().map(|d| d.terms.len()).sum();
        prop_assert_eq!(postings_total, doc_terms);
    }

    /// Pivoted normalization preserves the engine invariants (hits sorted,
    /// truth consistent) even though norms are no longer 1.
    #[test]
    fn pivoted_engine_is_consistent(docs in arb_docs(), qw in arb_query_words(), t in 0.0f64..0.8) {
        let c = build(&docs, WeightingScheme::PivotedLogTf { slope: 0.3 });
        let engine = SearchEngine::new(c.clone());
        let q = query_of(&c, &qw);
        let hits = engine.search_threshold(&q, t);
        for w in hits.windows(2) {
            prop_assert!(w[0].sim >= w[1].sim);
        }
        prop_assert_eq!(hits.len() as u64, engine.true_usefulness(&q, t).no_doc);
    }
}
