//! The standard experimental datasets — synthetic stand-ins for the
//! paper's D1/D2/D3 and its TREC size-table collections.
//!
//! * **D1′** — 761 documents from one topic (the paper's D1 is the largest
//!   single newsgroup snapshot);
//! * **D2′** — 1 466 documents merging two topics (D2 merges the two
//!   largest snapshots);
//! * **D3′** — 1 014 documents merging 26 topics (D3 merges the 26
//!   smallest snapshots), the most inhomogeneous;
//! * a 6 234-query SIFT-style log shared by all experiments.

use crate::generator::{CollectionSpec, SyntheticCorpus};
use crate::queries::QueryLogSpec;
use seu_engine::Collection;

/// The standard bundle every table reproduction runs on.
#[derive(Debug)]
pub struct PaperDatasets {
    /// D1′: 761 docs, one topic.
    pub d1: Collection,
    /// D2′: 1 466 docs, two topics.
    pub d2: Collection,
    /// D3′: 1 014 docs, 26 topics.
    pub d3: Collection,
    /// 6 234 token-list queries.
    pub queries: Vec<Vec<String>>,
}

/// Generates the standard bundle from the 53-topic universe. Deterministic
/// in `seed`.
pub fn paper_datasets(seed: u64) -> PaperDatasets {
    let corpus = SyntheticCorpus::standard();
    let d1 = corpus.generate_collection(&CollectionSpec {
        name: "D1".into(),
        n_docs: 761,
        topics: vec![0],
        seed: seed ^ 0xD1,
    });
    let d2 = corpus.generate_collection(&CollectionSpec {
        name: "D2".into(),
        n_docs: 1466,
        topics: vec![1, 2],
        seed: seed ^ 0xD2,
    });
    let d3 = corpus.generate_collection(&CollectionSpec {
        name: "D3".into(),
        n_docs: 1014,
        topics: (27..53).collect(),
        seed: seed ^ 0xD3,
    });
    let queries = corpus.generate_query_log(&QueryLogSpec::paper_default(seed ^ 0x5157));
    PaperDatasets {
        d1,
        d2,
        d3,
        queries,
    }
}

/// Larger collections for the §3.2 scalability table, standing in for the
/// paper's WSJ / FR / DOE TREC collections (scaled down in document count
/// to stay laptop-friendly; the *ratio* representative/collection is what
/// the experiment is about, and that ratio depends on tokens-per-distinct-
/// term, so these use longer, more numerous documents than the newsgroup
/// snapshots).
pub fn scalability_collections(seed: u64) -> Vec<(&'static str, Collection)> {
    use crate::generator::{Universe, UniverseConfig};
    let corpus = SyntheticCorpus::new(Universe::new(UniverseConfig {
        // Long articles (exp(5.8) ≈ 330 tokens) push the token-to-term
        // ratio toward TREC territory.
        doc_len_ln_mean: 5.8,
        doc_len_ln_sigma: 0.6,
        ..UniverseConfig::default()
    }));
    let mk = |name: &'static str, n_docs: usize, topics: Vec<usize>, s: u64| {
        (
            name,
            corpus.generate_collection(&CollectionSpec {
                name: name.into(),
                n_docs,
                topics,
                seed: s,
            }),
        )
    };
    vec![
        mk("WSJ'", 16000, (0..20).collect(), seed ^ 0xA1),
        mk("FR'", 13000, (10..30).collect(), seed ^ 0xA2),
        mk("DOE'", 14000, (0..28).collect(), seed ^ 0xA3),
    ]
}

/// The full 53-database universe: one collection per topic, as the
/// paper's news host actually was. This is the workload for the
/// many-database ranking experiment (E11) — the paper's stated future
/// work ("extensive experiments involving much larger and much more
/// databases"). Database sizes vary (Zipf-ish) like real newsgroups.
pub fn many_databases(seed: u64, docs_base: usize) -> Vec<(String, Collection)> {
    let corpus = SyntheticCorpus::standard();
    let n_topics = corpus.universe().config().n_topics;
    (0..n_topics)
        .map(|topic| {
            // Group sizes decay with topic index: the paper's host had a
            // 761-message largest group and many small ones.
            let n_docs = (docs_base as f64 / (1.0 + topic as f64 * 0.25))
                .round()
                .max(12.0) as usize;
            let spec = CollectionSpec {
                name: format!("ng{topic:02}"),
                n_docs,
                topics: vec![topic],
                seed: seed ^ (0x1000 + topic as u64),
            };
            (format!("ng{topic:02}"), corpus.generate_collection(&spec))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        let d = paper_datasets(42);
        assert_eq!(d.d1.len(), 761);
        assert_eq!(d.d2.len(), 1466);
        assert_eq!(d.d3.len(), 1014);
        assert_eq!(d.queries.len(), 6234);
    }

    #[test]
    fn inhomogeneity_ladder() {
        // The paper's construction: D1 draws from 1 topic, D2 from 2, D3
        // from 26. Count the distinct topic namespaces actually present.
        let d = paper_datasets(42);
        let topics_present = |c: &Collection| {
            let mut topics: Vec<&str> = c
                .vocab()
                .iter()
                .filter(|(_, s)| s.starts_with("tp"))
                .map(|(_, s)| &s[..s.find('x').unwrap()])
                .collect();
            topics.sort();
            topics.dedup();
            topics.len()
        };
        assert_eq!(topics_present(&d.d1), 1);
        assert_eq!(topics_present(&d.d2), 2);
        assert_eq!(topics_present(&d.d3), 26);
        // More topics at comparable size -> strictly larger vocabulary.
        assert!(d.d3.vocab().len() > d.d1.vocab().len());
    }

    #[test]
    fn many_databases_cover_all_topics_with_varying_sizes() {
        let dbs = many_databases(9, 150);
        assert_eq!(dbs.len(), 53);
        assert_eq!(dbs[0].0, "ng00");
        assert!(dbs[0].1.len() > dbs[52].1.len());
        assert!(dbs[52].1.len() >= 12);
    }

    #[test]
    fn single_term_fraction_is_about_30_percent() {
        let d = paper_datasets(42);
        let single = d.queries.iter().filter(|q| q.len() == 1).count();
        let frac = single as f64 / d.queries.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "frac={frac}");
    }
}
