//! The topic universe and collection generator.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use seu_engine::{Collection, CollectionBuilder, WeightingScheme};
use seu_stats::normal_sample;
use seu_text::Analyzer;

/// Configuration of a topic universe (the "news host").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Number of topics (the paper's host had 53 newsgroups).
    pub n_topics: usize,
    /// Topic-specific vocabulary size per topic.
    pub topic_vocab: usize,
    /// Shared background vocabulary size.
    pub background_vocab: usize,
    /// Zipf exponent for topic vocabularies.
    pub topic_zipf: f64,
    /// Zipf exponent for the background vocabulary.
    pub background_zipf: f64,
    /// Probability that a document token is background rather than topical.
    pub background_mix: f64,
    /// Within-document burstiness: probability that a token repeats one of
    /// the document's earlier tokens instead of being drawn fresh (a
    /// Simon/Yule process). Content terms in real posts repeat; this is
    /// what produces the mid-range normalized weights the paper's
    /// threshold sweep (0.1–0.6) exercises.
    pub burstiness: f64,
    /// Mean of `ln(document length)`.
    pub doc_len_ln_mean: f64,
    /// Standard deviation of `ln(document length)`.
    pub doc_len_ln_sigma: f64,
    /// Query terms skip the `rank_floor` most frequent topical terms:
    /// users query with mid-frequency content-bearing terms, not with the
    /// quasi-stopwords that dominate every document of a topic.
    pub query_topic_rank_floor: usize,
    /// Same for background terms.
    pub query_background_rank_floor: usize,
    /// Zipf exponent of *query* term choice over topical ranks — flatter
    /// than the document exponent, so queries spread over the vocabulary
    /// but still occasionally name a topic's dominant terms.
    pub query_topic_zipf: f64,
    /// Same for background ranks.
    pub query_background_zipf: f64,
    /// Terms of a topic are grouped into clusters (sub-subjects, like
    /// threads within a newsgroup) of this many consecutive ranks.
    /// Documents and queries that share a cluster share co-occurring
    /// terms — which is what makes multi-term queries match documents by
    /// *combined* similarity and stresses the estimators' independence
    /// assumption exactly as real text does.
    pub cluster_size: usize,
    /// Number of clusters each document features.
    pub clusters_per_doc: usize,
    /// Probability that a topical document token comes from one of the
    /// document's clusters rather than the topic-wide Zipf.
    pub doc_cluster_mix: f64,
    /// Probability that a topical query term comes from the query's
    /// cluster rather than the topic-wide query distribution.
    pub query_cluster_prob: f64,
    /// Zipf exponent over cluster popularity (some sub-subjects are
    /// discussed much more than others).
    pub cluster_zipf: f64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            n_topics: 53,
            topic_vocab: 6000,
            background_vocab: 20000,
            topic_zipf: 1.05,
            background_zipf: 1.1,
            background_mix: 0.35,
            burstiness: 0.35,
            // exp(4.8) ≈ 120 tokens — newsgroup posts.
            doc_len_ln_mean: 4.8,
            doc_len_ln_sigma: 0.5,
            query_topic_rank_floor: 2,
            query_background_rank_floor: 10,
            query_topic_zipf: 0.75,
            query_background_zipf: 0.85,
            cluster_size: 25,
            clusters_per_doc: 2,
            doc_cluster_mix: 0.45,
            query_cluster_prob: 0.7,
            cluster_zipf: 0.9,
        }
    }
}

/// A frozen topic universe: samplers shared by all collections and query
/// logs generated from it.
#[derive(Debug, Clone)]
pub struct Universe {
    config: UniverseConfig,
    topic_sampler: ZipfSampler,
    background_sampler: ZipfSampler,
    query_topic_sampler: ZipfSampler,
    query_background_sampler: ZipfSampler,
    cluster_sampler: ZipfSampler,
}

impl Universe {
    /// Builds the universe's samplers.
    pub fn new(config: UniverseConfig) -> Self {
        assert!(config.n_topics > 0, "universe needs topics");
        assert!(
            (0.0..=1.0).contains(&config.background_mix),
            "background_mix out of range"
        );
        assert!(
            config.query_topic_rank_floor < config.topic_vocab,
            "query rank floor exhausts the topic vocabulary"
        );
        assert!(
            config.query_background_rank_floor < config.background_vocab,
            "query rank floor exhausts the background vocabulary"
        );
        let topic_sampler = ZipfSampler::new(config.topic_vocab, config.topic_zipf);
        let background_sampler = ZipfSampler::new(config.background_vocab, config.background_zipf);
        let query_topic_sampler = ZipfSampler::new(
            config.topic_vocab - config.query_topic_rank_floor,
            config.query_topic_zipf,
        );
        let query_background_sampler = ZipfSampler::new(
            config.background_vocab - config.query_background_rank_floor,
            config.query_background_zipf,
        );
        assert!(
            config.cluster_size > 0 && config.cluster_size <= config.topic_vocab,
            "invalid cluster size"
        );
        let n_clusters = config.topic_vocab / config.cluster_size;
        let cluster_sampler = ZipfSampler::new(n_clusters.max(1), config.cluster_zipf);
        Universe {
            config,
            topic_sampler,
            background_sampler,
            query_topic_sampler,
            query_background_sampler,
            cluster_sampler,
        }
    }

    /// Number of clusters per topic.
    pub fn n_clusters(&self) -> usize {
        (self.config.topic_vocab / self.config.cluster_size).max(1)
    }

    /// Draws a cluster id (popular sub-subjects more often).
    pub fn draw_cluster<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.cluster_sampler.sample(rng)
    }

    /// Draws a term rank uniformly from within a cluster.
    pub fn draw_cluster_rank<R: Rng + ?Sized>(&self, rng: &mut R, cluster: usize) -> usize {
        let lo = cluster * self.config.cluster_size;
        rng.gen_range(lo..lo + self.config.cluster_size)
    }

    /// The configuration.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// Term string for rank `rank` of topic `topic`.
    pub fn topic_term(topic: usize, rank: usize) -> String {
        format!("tp{topic}x{rank}")
    }

    /// Term string for background rank `rank`.
    pub fn background_term(rank: usize) -> String {
        format!("bg{rank}")
    }

    /// Draws one token for a document (or query) about `topic`;
    /// `on_topic_prob` is the probability of a topical rather than
    /// background term.
    pub fn draw_token<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        topic: usize,
        on_topic_prob: f64,
    ) -> String {
        if rng.gen::<f64>() < on_topic_prob {
            Self::topic_term(topic, self.topic_sampler.sample(rng))
        } else {
            Self::background_term(self.background_sampler.sample(rng))
        }
    }

    /// Draws one *query* token about `topic` (and the query's sub-subject
    /// `cluster`): like [`Universe::draw_token`] but using the flatter
    /// query distributions with rank floors — users query with
    /// content-bearing mid-frequency terms — and preferring the query's
    /// cluster, because a query's terms describe one coherent subject.
    pub fn draw_query_token<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        topic: usize,
        cluster: usize,
        on_topic_prob: f64,
    ) -> String {
        if rng.gen::<f64>() < on_topic_prob {
            if rng.gen::<f64>() < self.config.query_cluster_prob {
                Self::topic_term(topic, self.draw_cluster_rank(rng, cluster))
            } else {
                let rank =
                    self.config.query_topic_rank_floor + self.query_topic_sampler.sample(rng);
                Self::topic_term(topic, rank)
            }
        } else {
            let rank =
                self.config.query_background_rank_floor + self.query_background_sampler.sample(rng);
            Self::background_term(rank)
        }
    }

    /// Draws a document length from the configured log-normal, clamped to
    /// `[20, 800]` tokens.
    pub fn draw_doc_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let ln = normal_sample(
            rng,
            self.config.doc_len_ln_mean,
            self.config.doc_len_ln_sigma,
        );
        (ln.exp().round() as i64).clamp(20, 800) as usize
    }
}

/// Specification of one synthetic collection (one search-engine database).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionSpec {
    /// Collection name (e.g. "D1").
    pub name: String,
    /// Number of documents.
    pub n_docs: usize,
    /// Topics the collection's documents are drawn from; documents are
    /// assigned to topics round-robin. One topic gives a homogeneous
    /// collection (the paper's D1), many topics a diverse one (D3).
    pub topics: Vec<usize>,
    /// RNG seed (combined with the universe's samplers).
    pub seed: u64,
}

/// A universe plus generation entry points.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    universe: Universe,
}

impl SyntheticCorpus {
    /// Wraps a universe.
    pub fn new(universe: Universe) -> Self {
        SyntheticCorpus { universe }
    }

    /// The standard 53-topic universe with default parameters.
    pub fn standard() -> Self {
        SyntheticCorpus::new(Universe::new(UniverseConfig::default()))
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Generates one collection per its spec (deterministic in
    /// `spec.seed`). Documents are analyzed with the paper's pipeline and
    /// weighted with cosine-normalized term frequency.
    pub fn generate_collection(&self, spec: &CollectionSpec) -> Collection {
        self.generate_collection_with(spec, WeightingScheme::CosineTf)
    }

    /// [`SyntheticCorpus::generate_collection`] under an explicit
    /// weighting scheme — token streams are identical for the same seed,
    /// so scheme comparisons (experiment E19) vary exactly one thing.
    pub fn generate_collection_with(
        &self,
        spec: &CollectionSpec,
        scheme: WeightingScheme,
    ) -> Collection {
        assert!(
            !spec.topics.is_empty(),
            "collection needs at least one topic"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut builder = CollectionBuilder::new(Analyzer::paper_default(), scheme);
        let on_topic = 1.0 - self.universe.config.background_mix;
        let cfg = self.universe.config.clone();
        for i in 0..spec.n_docs {
            let topic = spec.topics[i % spec.topics.len()];
            let len = self.universe.draw_doc_len(&mut rng);
            // The document's sub-subjects.
            let clusters: Vec<usize> = (0..cfg.clusters_per_doc.max(1))
                .map(|_| self.universe.draw_cluster(&mut rng))
                .collect();
            let mut tokens: Vec<String> = Vec::with_capacity(len);
            for _ in 0..len {
                let tok = if !tokens.is_empty() && rng.gen::<f64>() < cfg.burstiness {
                    // Repeat an earlier token (burstiness).
                    tokens[rng.gen_range(0..tokens.len())].clone()
                } else if rng.gen::<f64>() >= on_topic {
                    Universe::background_term(self.universe.background_sampler.sample(&mut rng))
                } else if rng.gen::<f64>() < cfg.doc_cluster_mix {
                    let c = clusters[rng.gen_range(0..clusters.len())];
                    Universe::topic_term(topic, self.universe.draw_cluster_rank(&mut rng, c))
                } else {
                    Universe::topic_term(topic, self.universe.topic_sampler.sample(&mut rng))
                };
                tokens.push(tok);
            }
            builder.add_tokens(&format!("{}-{:05}", spec.name, i), &tokens);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_universe() -> Universe {
        Universe::new(UniverseConfig {
            n_topics: 4,
            topic_vocab: 200,
            background_vocab: 300,
            ..UniverseConfig::default()
        })
    }

    fn spec(name: &str, n: usize, topics: Vec<usize>, seed: u64) -> CollectionSpec {
        CollectionSpec {
            name: name.into(),
            n_docs: n,
            topics,
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let corpus = SyntheticCorpus::new(small_universe());
        let a = corpus.generate_collection(&spec("x", 20, vec![0], 42));
        let b = corpus.generate_collection(&spec("x", 20, vec![0], 42));
        assert_eq!(a.len(), b.len());
        for (da, db) in a.docs().iter().zip(b.docs()) {
            assert_eq!(da.len, db.len);
            assert_eq!(da.terms.len(), db.terms.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let corpus = SyntheticCorpus::new(small_universe());
        let a = corpus.generate_collection(&spec("x", 20, vec![0], 1));
        let b = corpus.generate_collection(&spec("x", 20, vec![0], 2));
        let same = a
            .docs()
            .iter()
            .zip(b.docs())
            .all(|(da, db)| da.len == db.len);
        assert!(!same);
    }

    #[test]
    fn single_topic_collections_share_background_only() {
        let corpus = SyntheticCorpus::new(small_universe());
        let a = corpus.generate_collection(&spec("a", 30, vec![0], 7));
        let b = corpus.generate_collection(&spec("b", 30, vec![1], 8));
        // Topic-0 terms appear in a but not b.
        let topical_in_a = a
            .vocab()
            .iter()
            .filter(|(_, s)| s.starts_with("tp0x"))
            .count();
        let topical0_in_b = b
            .vocab()
            .iter()
            .filter(|(_, s)| s.starts_with("tp0x"))
            .count();
        assert!(topical_in_a > 50);
        assert_eq!(topical0_in_b, 0);
        // Background terms appear in both.
        let bg_in_b = b
            .vocab()
            .iter()
            .filter(|(_, s)| s.starts_with("bg"))
            .count();
        assert!(bg_in_b > 50);
    }

    #[test]
    fn multi_topic_collection_is_more_diverse() {
        let corpus = SyntheticCorpus::new(small_universe());
        let homo = corpus.generate_collection(&spec("h", 60, vec![0], 3));
        let hetero = corpus.generate_collection(&spec("h", 60, vec![0, 1, 2, 3], 3));
        // More topics -> more distinct terms at equal size.
        assert!(hetero.vocab().len() > homo.vocab().len());
    }

    #[test]
    fn scheme_variation_shares_token_stream() {
        use seu_engine::WeightingScheme;
        let corpus = SyntheticCorpus::new(small_universe());
        let sp = spec("s", 15, vec![0], 9);
        let tf = corpus.generate_collection_with(&sp, WeightingScheme::CosineTf);
        let log = corpus.generate_collection_with(&sp, WeightingScheme::CosineLogTf);
        // Same seed -> same tokens -> same vocabulary and lengths...
        assert_eq!(tf.vocab().len(), log.vocab().len());
        assert_eq!(tf.total_tokens(), log.total_tokens());
        // ...but different weights wherever tf > 1 occurs.
        let differs = tf.docs().iter().zip(log.docs()).any(|(a, b)| {
            a.terms
                .iter()
                .zip(&b.terms)
                .any(|(x, y)| (x.1 - y.1).abs() > 1e-9)
        });
        assert!(differs, "weighting scheme had no effect");
    }

    #[test]
    fn doc_lengths_in_bounds() {
        let u = small_universe();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let l = u.draw_doc_len(&mut rng);
            assert!((20..=800).contains(&l));
        }
    }

    #[test]
    fn term_strings_survive_the_analyzer() {
        let a = Analyzer::paper_default();
        assert_eq!(a.analyze(&Universe::topic_term(3, 17)), ["tp3x17"]);
        assert_eq!(a.analyze(&Universe::background_term(5)), ["bg5"]);
    }
}
