//! Loading real corpora from disk.
//!
//! For users who have an actual document collection (e.g. a newsgroup
//! archive), two plain-text layouts are supported:
//!
//! * a directory with one document per file;
//! * a single file with documents separated by blank lines (one "message"
//!   per paragraph block).

use seu_engine::{Collection, CollectionBuilder, WeightingScheme};
use seu_text::Analyzer;
use std::fs;
use std::io;
use std::path::Path;

/// Loads every regular file under `dir` (non-recursive) as one document.
/// Files are ordered by name for determinism.
pub fn load_directory(
    dir: &Path,
    analyzer: Analyzer,
    scheme: WeightingScheme,
) -> io::Result<Collection> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut builder = CollectionBuilder::new(analyzer, scheme);
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        builder.add_document(&name, &text);
    }
    Ok(builder.build())
}

/// Splits an mbox-style news spool (messages delimited by `From ` lines)
/// into documents, skipping RFC-822 headers except `Subject:` (whose text
/// is content). This is the layout of the newsgroup snapshots the
/// paper's D1–D3 were built from.
pub fn load_mbox(
    name_prefix: &str,
    text: &str,
    analyzer: Analyzer,
    scheme: WeightingScheme,
) -> Collection {
    let mut builder = CollectionBuilder::new(analyzer, scheme);
    let mut current = String::new();
    let mut in_headers = false;
    let mut index = 0usize;
    let flush = |body: &mut String, index: &mut usize, builder: &mut CollectionBuilder| {
        if !body.trim().is_empty() {
            builder.add_document(&format!("{name_prefix}-{index:05}"), body);
            *index += 1;
        }
        body.clear();
    };
    for line in text.lines() {
        if line.starts_with("From ") {
            flush(&mut current, &mut index, &mut builder);
            in_headers = true;
            continue;
        }
        if in_headers {
            if line.is_empty() {
                in_headers = false;
            } else if let Some(subject) = line.strip_prefix("Subject:") {
                current.push_str(subject);
                current.push('\n');
            }
            continue;
        }
        current.push_str(line);
        current.push('\n');
    }
    flush(&mut current, &mut index, &mut builder);
    builder.build()
}

/// Splits `text` into documents on blank lines and builds a collection.
pub fn load_blank_line_separated(
    name_prefix: &str,
    text: &str,
    analyzer: Analyzer,
    scheme: WeightingScheme,
) -> Collection {
    let mut builder = CollectionBuilder::new(analyzer, scheme);
    for (i, block) in text
        .split("\n\n")
        .map(str::trim)
        .filter(|b| !b.is_empty())
        .enumerate()
    {
        builder.add_document(&format!("{name_prefix}-{i}"), block);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_line_splitting() {
        let text = "first doc about cats\n\nsecond doc about dogs\n\n\n\nthird";
        let c = load_blank_line_separated(
            "m",
            text,
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.docs()[0].name, "m-0");
        assert!(c.vocab().get("cats").is_some());
        assert!(c.vocab().get("dogs").is_some());
    }

    #[test]
    fn empty_text_is_empty_collection() {
        let c = load_blank_line_separated(
            "m",
            "\n\n  \n\n",
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn mbox_splits_messages_and_strips_headers() {
        let spool = "From alice Tue Jan 5 10:00:00 1999\n\
                     Path: news.example.com\n\
                     Subject: mushroom soup question\n\
                     Message-ID: <1@example>\n\
                     \n\
                     how long should porcini simmer\n\
                     \n\
                     From bob Tue Jan 5 11:00:00 1999\n\
                     Subject: re soup\n\
                     \n\
                     twenty minutes works fine\n";
        let c = load_mbox(
            "ng",
            spool,
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.docs()[0].name, "ng-00000");
        // Subject text is indexed; header fields are not.
        assert!(c.vocab().get("mushroom").is_some());
        assert!(c.vocab().get("porcini").is_some());
        assert!(c.vocab().get("example").is_none(), "header leaked");
        assert!(c.vocab().get("path").is_none());
    }

    #[test]
    fn mbox_without_leading_from_is_one_message() {
        let c = load_mbox(
            "m",
            "just a bare body with words\n",
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert_eq!(c.len(), 1);
        assert!(c.vocab().get("bare").is_some());
    }

    #[test]
    fn mbox_empty_input() {
        let c = load_mbox(
            "m",
            "",
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn directory_loading() {
        let dir = std::env::temp_dir().join(format!("seu-loader-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.txt"), "alpha beta").unwrap();
        fs::write(dir.join("b.txt"), "gamma delta").unwrap();
        let c = load_directory(&dir, Analyzer::paper_default(), WeightingScheme::CosineTf)
            .expect("loads");
        assert_eq!(c.len(), 2);
        assert_eq!(c.docs()[0].name, "a.txt");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors() {
        let res = load_directory(
            Path::new("/definitely/not/here"),
            Analyzer::paper_default(),
            WeightingScheme::CosineTf,
        );
        assert!(res.is_err());
    }
}
