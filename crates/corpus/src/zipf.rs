//! Zipf-distributed rank sampling over a finite vocabulary.
//!
//! Term frequencies in text famously follow a Zipf law: the `r`-th most
//! frequent term has probability proportional to `1 / r^s`. Built on the
//! alias method, each draw is O(1) after O(N) preprocessing.

use rand::Rng;
use seu_stats::AliasTable;

/// A sampler of ranks `0..n` with `P(rank = r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    table: AliasTable,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s >= 0.0 && s.is_finite(), "invalid exponent {s}");
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
        ZipfSampler {
            table: AliasTable::new(&weights),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the support is empty (never true for a constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws one rank in `0..n` (0 = most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn harmonic_frequencies() {
        // With s = 1 over 10 ranks, P(0)/P(1) = 2.
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 10];
        let n = 400_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.07);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 1.3);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_support_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
