//! Synthetic workloads standing in for the paper's unavailable data.
//!
//! The ICDE 1999 experiments use 53 newsgroup snapshot databases collected
//! at Stanford for gGlOSS and 6 234 real user queries from the SIFT
//! Netnews server. Neither is redistributable today, so this crate builds
//! the closest synthetic equivalent (see DESIGN.md §4):
//!
//! * [`Universe`] — a world of topics, each with its own Zipfian
//!   vocabulary over topic-specific terms plus a shared background
//!   vocabulary (the "newsgroups");
//! * [`CollectionSpec`] / [`SyntheticCorpus::generate_collection`] —
//!   newsgroup-snapshot databases: documents with log-normal lengths whose
//!   tokens mix topical and background terms. Merging more topics into one
//!   collection reproduces the paper's D1 < D2 < D3 inhomogeneity ladder;
//! * [`QueryLogSpec`] / [`SyntheticCorpus::generate_query_log`] —
//!   SIFT-style short queries: ≈ 30 % single-term, none longer than 6
//!   terms, topic-focused with background admixture;
//! * [`datasets`] — the standard D1′/D2′/D3′ + query-log bundle used by
//!   every table reproduction, and larger collections for the §3.2
//!   scalability table;
//! * [`loader`] — plain-text loading for users with real corpora on disk.
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod generator;
pub mod loader;
pub mod queries;
pub mod zipf;

pub use datasets::{many_databases, paper_datasets, scalability_collections, PaperDatasets};
pub use generator::{CollectionSpec, SyntheticCorpus, Universe, UniverseConfig};
pub use queries::QueryLogSpec;
pub use zipf::ZipfSampler;
