//! SIFT-style query-log generation.
//!
//! The paper's 6 234 queries are real SIFT Netnews subscriptions: short
//! (no more than 6 terms, ≈ 30 % single-term), topic-focused. The
//! generator reproduces those marginals: each query picks a topic of the
//! universe, a length from the paper's distribution, and draws terms from
//! the topic's Zipfian vocabulary with background admixture.

use crate::generator::SyntheticCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic query log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryLogSpec {
    /// Number of queries (the paper uses 6 234).
    pub n_queries: usize,
    /// Fraction of single-term queries (the paper reports ≈ 30 %,
    /// 1 941 / 6 234).
    pub single_term_fraction: f64,
    /// Maximum query length (the paper keeps only queries with ≤ 6 terms).
    pub max_terms: usize,
    /// Probability that each query term is topical rather than background.
    pub on_topic_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QueryLogSpec {
    /// The paper's workload: 6 234 queries, 30 % single-term, ≤ 6 terms.
    pub fn paper_default(seed: u64) -> Self {
        QueryLogSpec {
            n_queries: 6234,
            single_term_fraction: 0.3,
            max_terms: 6,
            on_topic_prob: 0.65,
            seed,
        }
    }
}

impl SyntheticCorpus {
    /// Generates a query log as token lists (queries are *texts*; they are
    /// turned into per-collection vectors by
    /// [`seu_engine::Collection::query_from_text`], which drops terms the
    /// collection has never seen — as a real engine would).
    pub fn generate_query_log(&self, spec: &QueryLogSpec) -> Vec<Vec<String>> {
        assert!(spec.max_terms >= 1, "queries need at least one term");
        assert!(
            (0.0..=1.0).contains(&spec.single_term_fraction),
            "single_term_fraction out of range"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let n_topics = self.universe().config().n_topics;
        (0..spec.n_queries)
            .map(|_| {
                let topic = rng.gen_range(0..n_topics);
                // The query's sub-subject: its terms co-occur in documents
                // featuring the same cluster.
                let cluster = self.universe().draw_cluster(&mut rng);
                let len = if rng.gen::<f64>() < spec.single_term_fraction {
                    1
                } else {
                    rng.gen_range(2..=spec.max_terms.max(2))
                };
                let mut terms: Vec<String> = Vec::with_capacity(len);
                // Queries are term sets (SIFT profiles): resample duplicates.
                let mut guard = 0;
                while terms.len() < len && guard < 100 {
                    guard += 1;
                    let t = self.universe().draw_query_token(
                        &mut rng,
                        topic,
                        cluster,
                        spec.on_topic_prob,
                    );
                    if !terms.contains(&t) {
                        terms.push(t);
                    }
                }
                terms
            })
            .collect()
    }
}

/// Joins a token-list query into text (the form users type).
pub fn query_text(tokens: &[String]) -> String {
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Universe, UniverseConfig};

    fn corpus() -> SyntheticCorpus {
        SyntheticCorpus::new(Universe::new(UniverseConfig {
            n_topics: 6,
            topic_vocab: 300,
            background_vocab: 400,
            ..UniverseConfig::default()
        }))
    }

    #[test]
    fn marginals_match_spec() {
        let spec = QueryLogSpec {
            n_queries: 5000,
            single_term_fraction: 0.3,
            max_terms: 6,
            on_topic_prob: 0.65,
            seed: 99,
        };
        let log = corpus().generate_query_log(&spec);
        assert_eq!(log.len(), 5000);
        let single = log.iter().filter(|q| q.len() == 1).count();
        let frac = single as f64 / 5000.0;
        assert!((frac - 0.3).abs() < 0.03, "single-term fraction {frac}");
        assert!(log.iter().all(|q| (1..=6).contains(&q.len())));
    }

    #[test]
    fn queries_have_distinct_terms() {
        let spec = QueryLogSpec::paper_default(3);
        let log = corpus().generate_query_log(&spec);
        for q in &log {
            let mut sorted = q.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "duplicate in {q:?}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = QueryLogSpec::paper_default(7);
        let a = corpus().generate_query_log(&spec);
        let b = corpus().generate_query_log(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn mixes_topical_and_background() {
        let spec = QueryLogSpec {
            n_queries: 2000,
            single_term_fraction: 0.3,
            max_terms: 6,
            on_topic_prob: 0.65,
            seed: 5,
        };
        let log = corpus().generate_query_log(&spec);
        let all: Vec<&String> = log.iter().flatten().collect();
        let topical = all.iter().filter(|t| t.starts_with("tp")).count();
        let background = all.iter().filter(|t| t.starts_with("bg")).count();
        assert_eq!(topical + background, all.len());
        let frac = topical as f64 / all.len() as f64;
        assert!((frac - 0.65).abs() < 0.05, "topical fraction {frac}");
    }

    #[test]
    fn query_text_joins() {
        assert_eq!(query_text(&["ab".into(), "cd".into()]), "ab cd");
    }
}
