//! Property-based tests for the synthetic workload generator.

use proptest::prelude::*;
use seu_corpus::{CollectionSpec, QueryLogSpec, SyntheticCorpus, Universe, UniverseConfig};

fn small_corpus() -> SyntheticCorpus {
    SyntheticCorpus::new(Universe::new(UniverseConfig {
        n_topics: 5,
        topic_vocab: 150,
        background_vocab: 200,
        ..UniverseConfig::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Collections honor their spec exactly and produce sane statistics.
    #[test]
    fn collection_matches_spec(n_docs in 1usize..40, topic in 0usize..5, seed in 0u64..500) {
        let corpus = small_corpus();
        let c = corpus.generate_collection(&CollectionSpec {
            name: "p".into(),
            n_docs,
            topics: vec![topic],
            seed,
        });
        prop_assert_eq!(c.len(), n_docs);
        prop_assert!(c.total_tokens() >= 20 * n_docs as u64);
        prop_assert!(c.total_tokens() <= 800 * n_docs as u64);
        // Every topical term belongs to the spec'd topic.
        let prefix = format!("tp{topic}x");
        for (_, term) in c.vocab().iter() {
            prop_assert!(
                term.starts_with(&prefix) || term.starts_with("bg"),
                "{term}"
            );
        }
        // Cosine invariant.
        for doc in c.docs() {
            let sq: f64 = doc.terms.iter().map(|&(_, w)| w * w).sum();
            prop_assert!(doc.terms.is_empty() || (sq - 1.0).abs() < 1e-9);
        }
    }

    /// Query logs honor their spec: count, length bounds, dedup, topics.
    #[test]
    fn query_log_matches_spec(
        n_queries in 1usize..200,
        stf in 0.0f64..1.0,
        max_terms in 1usize..8,
        seed in 0u64..500,
    ) {
        let corpus = small_corpus();
        let log = corpus.generate_query_log(&QueryLogSpec {
            n_queries,
            single_term_fraction: stf,
            max_terms,
            on_topic_prob: 0.6,
            seed,
        });
        prop_assert_eq!(log.len(), n_queries);
        for q in &log {
            prop_assert!(!q.is_empty());
            prop_assert!(q.len() <= max_terms.max(2));
            let mut sorted = q.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), q.len(), "duplicates in query");
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_deterministic(seed in 0u64..500) {
        let corpus = small_corpus();
        let spec = CollectionSpec {
            name: "d".into(),
            n_docs: 10,
            topics: vec![1, 3],
            seed,
        };
        let a = corpus.generate_collection(&spec);
        let b = corpus.generate_collection(&spec);
        prop_assert_eq!(a.vocab().len(), b.vocab().len());
        prop_assert_eq!(a.total_tokens(), b.total_tokens());
        for (da, db) in a.docs().iter().zip(b.docs()) {
            prop_assert_eq!(da.terms.len(), db.terms.len());
        }
    }
}
