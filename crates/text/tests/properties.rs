//! Property-based tests for the text pipeline.

use proptest::prelude::*;
use seu_text::{is_stopword, porter_stem, tokenize, Analyzer, AnalyzerConfig, Vocabulary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokens are lowercase alphanumeric runs of length >= 2 that appear
    /// (case-insensitively) in the input.
    #[test]
    fn tokenizer_invariants(text in ".{0,200}") {
        let lower = text.to_lowercase();
        for tok in tokenize(&text) {
            prop_assert!(tok.len() >= 2);
            prop_assert!(tok.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            prop_assert!(lower.contains(&tok), "{tok:?} not in input");
        }
    }

    /// Tokenization never panics and is deterministic.
    #[test]
    fn tokenizer_deterministic(text in ".{0,200}") {
        let a: Vec<String> = tokenize(&text).collect();
        let b: Vec<String> = tokenize(&text).collect();
        prop_assert_eq!(a, b);
    }

    /// Stems are never longer than the word, never empty for valid
    /// input, and stay ASCII-lowercase/digit.
    #[test]
    fn stemmer_invariants(word in "[a-z0-9]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(!stem.is_empty());
        // Porter only shrinks or rewrites suffixes of comparable length;
        // a one-letter growth is possible (e.g. "bl" -> "ble" inside a
        // longer rewrite) but never more.
        prop_assert!(stem.len() <= word.len() + 1, "{word} -> {stem}");
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
    }

    /// The stemmer is a pure function.
    #[test]
    fn stemmer_deterministic(word in "[a-z]{1,15}") {
        prop_assert_eq!(porter_stem(&word), porter_stem(&word));
    }

    /// Analysis with stopword removal yields a subsequence of analysis
    /// without it.
    #[test]
    fn stopword_removal_is_a_filter(text in "[a-zA-Z ]{0,120}") {
        let keep_all = Analyzer::new(AnalyzerConfig { remove_stopwords: false, stem: false });
        let filtered = Analyzer::new(AnalyzerConfig { remove_stopwords: true, stem: false });
        let all = keep_all.analyze(&text);
        let some = filtered.analyze(&text);
        // `some` is `all` minus stopwords, in order.
        let expected: Vec<String> = all.iter().filter(|t| !is_stopword(t)).cloned().collect();
        prop_assert_eq!(some, expected);
    }

    /// Vocabulary interning: ids are dense, stable, and round-trip.
    #[test]
    fn vocabulary_round_trip(words in prop::collection::vec("[a-z]{1,8}", 1..50)) {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.term(id), w.as_str());
            prop_assert_eq!(v.get(w), Some(id));
        }
        // Interning again changes nothing.
        let before = v.len();
        for w in &words {
            v.intern(w);
        }
        prop_assert_eq!(v.len(), before);
        // Ids are dense.
        prop_assert!(v.len() <= words.len());
    }
}
