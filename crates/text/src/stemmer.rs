//! The Porter stemming algorithm (Porter, 1980), implemented in full.
//!
//! Stemming conflates morphological variants ("connect", "connected",
//! "connection" …) to one index term. The analyzer can run with or without
//! it; the usefulness estimators are agnostic, but stemming shrinks the term
//! dictionary, which matters for the representative-size experiment (§3.2).
//!
//! This is the classic algorithm with the two widely-adopted revisions from
//! Porter's reference implementation (`BLI -> BLE` generalized, `LOGI ->
//! LOG` added).

/// Stems `word` (expected lowercase ASCII) with the Porter algorithm.
///
/// Words shorter than 3 characters are returned unchanged, as in the
/// reference implementation.
///
/// # Examples
///
/// ```
/// assert_eq!(seu_text::porter_stem("caresses"), "caress");
/// assert_eq!(seu_text::porter_stem("ponies"), "poni");
/// assert_eq!(seu_text::porter_stem("relational"), "relat");
/// assert_eq!(seu_text::porter_stem("usefulness"), "us");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() < 3
        || !word
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
    {
        return word.to_string();
    }
    let mut s = Stem {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("stemmer produces ASCII")
}

struct Stem {
    b: Vec<u8>,
}

impl Stem {
    /// Is the character at position `i` a consonant?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter's measure m of the stem `b[..len]`: the number of VC
    /// sequences in the [C](VC)^m[V] decomposition.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < len && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < len && !self.is_consonant(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // Skip consonants -> one VC.
            while i < len && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does the stem `b[..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    /// Does the stem end in a double consonant?
    fn ends_double_consonant(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_consonant(len - 1)
    }

    /// CVC test at end of `b[..len]` where the last C is not w, x or y
    /// (Porter's `*o` condition).
    fn cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        let (a, b, c) = (len - 3, len - 2, len - 1);
        self.is_consonant(a)
            && !self.is_consonant(b)
            && self.is_consonant(c)
            && !matches!(self.b[c], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suf: &str) -> bool {
        self.b.ends_with(suf.as_bytes())
    }

    /// Length of the stem if suffix `suf` is removed.
    fn stem_len(&self, suf: &str) -> usize {
        self.b.len() - suf.len()
    }

    /// Replaces suffix `suf` with `rep` (caller has checked `ends_with`).
    fn set_suffix(&mut self, suf: &str, rep: &str) {
        let l = self.stem_len(suf);
        self.b.truncate(l);
        self.b.extend_from_slice(rep.as_bytes());
    }

    /// If the word ends with `suf` and the remaining stem has measure > `m`,
    /// replace the suffix by `rep` and return true.
    fn replace_if_m(&mut self, suf: &str, rep: &str, m: usize) -> bool {
        if self.ends_with(suf) && self.measure(self.stem_len(suf)) > m {
            self.set_suffix(suf, rep);
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.set_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.set_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") && self.b.len() > 1 {
            self.set_suffix("s", "");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.set_suffix("eed", "ee");
            }
            return;
        }
        let fired = if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.set_suffix("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.set_suffix("ing", "");
            true
        } else {
            false
        };
        if fired {
            if self.ends_with("at") {
                self.set_suffix("at", "ate");
            } else if self.ends_with("bl") {
                self.set_suffix("bl", "ble");
            } else if self.ends_with("iz") {
                self.set_suffix("iz", "ize");
            } else if self.ends_double_consonant(self.b.len())
                && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
            {
                self.b.pop();
            } else if self.measure(self.b.len()) == 1 && self.cvc(self.b.len()) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            let l = self.b.len();
            self.b[l - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("bli", "ble"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
            ("logi", "log"),
        ];
        for &(suf, rep) in RULES {
            if self.ends_with(suf) {
                self.replace_if_m(suf, rep, 0);
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for &(suf, rep) in RULES {
            if self.ends_with(suf) {
                self.replace_if_m(suf, rep, 0);
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for &suf in SUFFIXES {
            if self.ends_with(suf) {
                let l = self.stem_len(suf);
                if self.measure(l) > 1 {
                    if suf == "ion" && !(l > 0 && matches!(self.b[l - 1], b's' | b't')) {
                        return;
                    }
                    self.b.truncate(l);
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with("e") {
            let l = self.stem_len("e");
            let m = self.measure(l);
            if m > 1 || (m == 1 && !self.cvc(l)) {
                self.b.truncate(l);
            }
        }
    }

    fn step5b(&mut self) {
        let l = self.b.len();
        if l >= 2 && self.b[l - 1] == b'l' && self.ends_double_consonant(l) && self.measure(l) > 1 {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic cases from Porter's paper and reference vocabulary.
    #[test]
    fn porter_paper_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            // step 1b yields "agree"; step 5a then removes the final e.
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("be"), "be");
        assert_eq!(porter_stem("ox"), "ox");
    }

    #[test]
    fn non_lowercase_passthrough() {
        assert_eq!(porter_stem("Hello"), "Hello");
        assert_eq!(porter_stem("caf\u{e9}s"), "caf\u{e9}s");
    }

    #[test]
    fn domain_vocabulary() {
        // Porter is not idempotent in general; pin the exact one-pass
        // outputs for the domain vocabulary instead.
        let cases = [
            ("search", "search"),
            ("engines", "engin"),
            ("estimating", "estim"),
            ("usefulness", "us"),
            ("databases", "databas"),
            ("queries", "queri"),
            ("statistical", "statist"),
            ("similarity", "similar"),
            ("documents", "document"),
            ("retrieval", "retriev"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn digits_survive() {
        assert_eq!(porter_stem("8080"), "8080");
        assert_eq!(porter_stem("x86"), "x86");
    }
}
