//! English stopword list ("non-content words such as 'the', 'of'").
//!
//! A compact classic list (the high-frequency core of the SMART list plus
//! common contraction fragments). Lookup is a binary search over a sorted
//! static table — no allocation, no hashing.

/// Sorted list of stopwords. Keep sorted: lookup is `binary_search`.
static STOPWORDS: &[&str] = &[
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "ll",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "re",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "ve",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns true if `word` (already lowercased) is a stopword.
///
/// # Examples
///
/// ```
/// assert!(seu_text::is_stopword("the"));
/// assert!(seu_text::is_stopword("of"));
/// assert!(!seu_text::is_stopword("database"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the built-in list.
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

/// Iterates over the built-in stopword list (sorted ascending).
pub fn stopwords() -> impl Iterator<Item = &'static str> {
    STOPWORDS.iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn paper_examples_are_stopwords() {
        assert!(is_stopword("the"));
        assert!(is_stopword("of"));
    }

    #[test]
    fn content_words_pass() {
        for w in ["search", "engine", "usefulness", "database", "metasearch"] {
            assert!(!is_stopword(w), "{w} wrongly filtered");
        }
    }

    #[test]
    fn case_sensitivity_contract() {
        // The predicate expects lowercased input; uppercase is not matched.
        assert!(!is_stopword("The"));
    }

    #[test]
    fn all_list_entries_match() {
        for w in stopwords() {
            assert!(is_stopword(w));
        }
        assert_eq!(stopwords().count(), stopword_count());
    }
}
