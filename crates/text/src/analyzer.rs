//! The composed analysis pipeline: tokenize → stopword filter → stem.
//!
//! Documents and queries must be analyzed identically (the paper transforms
//! both "into a vector of terms with weights"); an [`Analyzer`] value is
//! shared between the indexer, the representative builder, and the
//! metasearch broker to guarantee that.

use crate::stemmer::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenizer::tokenize;
use serde::{Deserialize, Serialize};

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Remove non-content words (the paper always does).
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer.
    pub stem: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            remove_stopwords: true,
            stem: false,
        }
    }
}

/// A reusable text analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// The paper's pipeline: stopword removal, no stemming.
    pub fn paper_default() -> Self {
        Analyzer::new(AnalyzerConfig::default())
    }

    /// The pipeline configuration.
    pub fn config(&self) -> AnalyzerConfig {
        self.config
    }

    /// Analyzes `text` into index terms.
    ///
    /// # Examples
    ///
    /// ```
    /// let a = seu_text::Analyzer::paper_default();
    /// assert_eq!(a.analyze("The usefulness of search engines"),
    ///            vec!["usefulness", "search", "engines"]);
    /// ```
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .filter(|t| !(self.config.remove_stopwords && is_stopword(t)))
            .map(|t| if self.config.stem { porter_stem(&t) } else { t })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_removes_stopwords_only() {
        let a = Analyzer::paper_default();
        assert_eq!(
            a.analyze("The cat and the hat, obviously running."),
            ["cat", "hat", "obviously", "running"]
        );
    }

    #[test]
    fn stemming_pipeline() {
        let a = Analyzer::new(AnalyzerConfig {
            remove_stopwords: true,
            stem: true,
        });
        assert_eq!(
            a.analyze("estimating the usefulness of search engines"),
            ["estim", "us", "search", "engin"]
        );
    }

    #[test]
    fn no_filtering() {
        let a = Analyzer::new(AnalyzerConfig {
            remove_stopwords: false,
            stem: false,
        });
        assert_eq!(a.analyze("of the cat"), ["of", "the", "cat"]);
    }

    #[test]
    fn empty_text() {
        let a = Analyzer::paper_default();
        assert!(a.analyze("").is_empty());
        assert!(a.analyze("the of and").is_empty());
    }
}
