//! Lowercasing alphanumeric tokenizer.
//!
//! A token is a maximal run of ASCII alphanumeric characters; everything
//! else separates tokens. Tokens are lowercased. Purely numeric tokens are
//! kept (they can be content-bearing in newsgroup text); single-character
//! tokens are dropped as noise, matching common IR practice of the era.

/// Iterator over the tokens of a text.
pub struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Iterator for Tokens<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        loop {
            let start = self.rest.find(|c: char| c.is_ascii_alphanumeric())?;
            self.rest = &self.rest[start..];
            let end = self
                .rest
                .find(|c: char| !c.is_ascii_alphanumeric())
                .unwrap_or(self.rest.len());
            let (tok, rest) = self.rest.split_at(end);
            self.rest = rest;
            if tok.len() >= 2 {
                return Some(tok.to_ascii_lowercase());
            }
            // Single-char token: skip and continue scanning.
        }
    }
}

/// Tokenizes `text` into lowercased alphanumeric tokens of length >= 2.
///
/// # Examples
///
/// ```
/// let toks: Vec<String> = seu_text::tokenize("The C-3PO unit, obviously!").collect();
/// assert_eq!(toks, ["the", "3po", "unit", "obviously"]);
/// ```
pub fn tokenize(text: &str) -> Tokens<'_> {
    Tokens { rest: text }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s).collect()
    }

    #[test]
    fn basic_splitting() {
        assert_eq!(toks("hello world"), ["hello", "world"]);
        assert_eq!(toks("hello, world!"), ["hello", "world"]);
        assert_eq!(toks("  spaced   out  "), ["spaced", "out"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("Hello WORLD MiXeD"), ["hello", "world", "mixed"]);
    }

    #[test]
    fn drops_single_chars() {
        assert_eq!(toks("a b ab I x yz"), ["ab", "yz"]);
    }

    #[test]
    fn keeps_numbers_and_mixed() {
        assert_eq!(toks("v2 port 8080 x86"), ["v2", "port", "8080", "x86"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(toks("").is_empty());
        assert!(toks("!!! ... ---").is_empty());
    }

    #[test]
    fn non_ascii_separates() {
        assert_eq!(toks("caf\u{e9} table"), ["caf", "table"]);
    }
}
