//! Text analysis pipeline for the `seu` workspace.
//!
//! The paper preprocesses documents and queries identically: text is split
//! into words, "non-content words such as 'the', 'of'" are removed, and the
//! remainder become vector components. This crate implements that pipeline
//! from scratch:
//!
//! * [`tokenizer`] — lowercasing alphanumeric tokenization;
//! * [`stopwords`] — a classic English stopword list (the SMART-style core);
//! * [`stemmer`] — a complete Porter stemmer (optional in the pipeline;
//!   1990s metasearch systems commonly stemmed, and the estimators are
//!   agnostic to it);
//! * [`vocab`] — a term dictionary interning strings to dense [`TermId`]s;
//! * [`analyzer`] — the composed pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use analyzer::{Analyzer, AnalyzerConfig};
pub use stemmer::porter_stem;
pub use stopwords::is_stopword;
pub use tokenizer::tokenize;
pub use vocab::{TermId, Vocabulary};
