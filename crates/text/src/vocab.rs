//! Term dictionary: interning term strings to dense [`TermId`]s.
//!
//! Everything downstream (document vectors, inverted indexes, database
//! representatives) works with dense integer term ids; the dictionary is the
//! single place strings live.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of a distinct term within one [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional term dictionary.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("vocabulary exceeds u32 terms"));
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Looks up an existing term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The string for a term id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        let a2 = v.intern("apple");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.term(a), "apple");
        assert_eq!(v.term(b), "banana");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut v = Vocabulary::new();
        for (i, w) in ["x0", "x1", "x2", "x3"].iter().enumerate() {
            assert_eq!(v.intern(w), TermId(i as u32));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert!(v.get("missing").is_none());
        assert_eq!(v.len(), 0);
        v.intern("present");
        assert!(v.get("present").is_some());
    }

    #[test]
    fn iter_round_trips() {
        let mut v = Vocabulary::new();
        v.intern("one");
        v.intern("two");
        let pairs: Vec<_> = v.iter().map(|(id, s)| (id.0, s.to_string())).collect();
        assert_eq!(pairs, [(0, "one".into()), (1, "two".into())]);
    }
}
