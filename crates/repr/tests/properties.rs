//! Property-based tests for representatives, subrange decomposition,
//! quantization and incremental accumulation.

use proptest::prelude::*;
use seu_engine::{Collection, CollectionBuilder, WeightingScheme};
use seu_repr::{
    FrozenSummary, MaxWeightMode, PortableRepresentative, QuantizedRepresentative, Representative,
    RepresentativeAccumulator, SubrangeScheme,
};
use seu_text::Analyzer;

fn arb_collection() -> impl Strategy<Value = Collection> {
    let word = prop::sample::select(vec!["ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"]);
    prop::collection::vec(
        prop::collection::vec(word.prop_map(String::from), 0..25),
        1..20,
    )
    .prop_map(|docs| {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, tokens) in docs.iter().enumerate() {
            b.add_tokens(&format!("d{i}"), tokens);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Representative statistics obey their definitional bounds.
    #[test]
    fn stats_are_bounded(c in arb_collection()) {
        let r = Representative::build(&c);
        prop_assert_eq!(r.n_docs(), c.len() as u64);
        for (_, s) in r.iter() {
            prop_assert!(s.p > 0.0 && s.p <= 1.0);
            prop_assert!(s.mean > 0.0);
            prop_assert!(s.mean <= s.max + 1e-12);
            prop_assert!(s.std_dev >= 0.0);
            // Cosine-normalized weights never exceed 1.
            prop_assert!(s.max <= 1.0 + 1e-9);
        }
    }

    /// Subrange decomposition conserves the term's probability mass for
    /// every scheme and both max-weight modes.
    #[test]
    fn decompose_conserves_mass(c in arb_collection(), k in 1usize..8, with_max in any::<bool>()) {
        let r = Representative::build(&c);
        let schemes = [SubrangeScheme::paper_six(), SubrangeScheme::equal(k, with_max)];
        for scheme in &schemes {
            for mode in [MaxWeightMode::Stored, MaxWeightMode::estimated_999()] {
                for (_, s) in r.iter() {
                    let spikes = scheme.decompose(s, r.n_docs(), mode);
                    let mass: f64 = spikes.iter().map(|&(p, _)| p).sum();
                    prop_assert!((mass - s.p).abs() < 1e-9);
                    for &(p, w) in &spikes {
                        prop_assert!(p >= 0.0);
                        prop_assert!(w >= 0.0);
                    }
                }
            }
        }
    }

    /// With the stored max and clamping, no spike exceeds the max weight.
    #[test]
    fn clamped_spikes_bounded_by_max(c in arb_collection()) {
        let r = Representative::build(&c);
        let scheme = SubrangeScheme::paper_six();
        for (_, s) in r.iter() {
            for (_, w) in scheme.decompose(s, r.n_docs(), MaxWeightMode::Stored) {
                prop_assert!(w <= s.max + 1e-12);
            }
        }
    }

    /// Quantize -> decode keeps every term and moves p by < 1/256.
    #[test]
    fn quantization_round_trip(c in arb_collection()) {
        let r = Representative::build(&c);
        let r2 = QuantizedRepresentative::from_representative(&r).decode();
        prop_assert_eq!(r2.distinct_terms(), r.distinct_terms());
        for (term, s) in r.iter() {
            let s2 = r2.get(term).expect("term survives");
            prop_assert!((s.p - s2.p).abs() <= 1.0 / 256.0 + 1e-9);
        }
    }

    /// The serialized wire format round-trips on arbitrary collections.
    #[test]
    fn wire_format_round_trip(c in arb_collection()) {
        let r = Representative::build(&c);
        let r2 = Representative::from_bytes(r.to_bytes()).expect("valid buffer");
        prop_assert_eq!(r2.n_docs(), r.n_docs());
        prop_assert_eq!(r2.distinct_terms(), r.distinct_terms());
    }

    /// `FrozenSummary::from_bytes` on arbitrary byte strings never
    /// panics, and the summary it admits never claims more terms than
    /// the input could possibly encode (so the up-front allocation is
    /// bounded by the input length).
    #[test]
    fn frozen_from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Some(summary) = FrozenSummary::from_bytes(&bytes[..]) {
            // Each parsed term consumed at least 18 bytes of input.
            prop_assert!(summary.repr.table_len() <= bytes.len() / 18);
        }
    }

    /// Corrupting any single byte of a valid wire buffer either still
    /// parses or is rejected — never a panic.
    #[test]
    fn frozen_from_bytes_survives_single_byte_corruption(
        c in arb_collection(),
        pos in any::<usize>(),
        flip in 1u8..255,
    ) {
        let valid = PortableRepresentative::build(&c).freeze().to_bytes();
        let mut corrupt = valid.to_vec();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= flip;
        let _ = FrozenSummary::from_bytes(&corrupt[..]);
    }

    /// Incremental accumulation over any document order equals the batch
    /// build (cosine weights are per-document, so order cannot matter).
    #[test]
    fn accumulator_matches_batch(c in arb_collection(), reverse in any::<bool>()) {
        let batch = Representative::build(&c);
        let mut acc = RepresentativeAccumulator::new();
        let docs: Vec<_> = if reverse {
            c.docs().iter().rev().collect()
        } else {
            c.docs().iter().collect()
        };
        for doc in docs {
            acc.add_document(doc, 0);
        }
        let snap = acc.snapshot();
        prop_assert_eq!(snap.distinct_terms(), batch.distinct_terms());
        for (term, s) in batch.iter() {
            let s2 = snap.get(term).expect("present");
            prop_assert!((s.p - s2.p).abs() < 1e-12);
            prop_assert!((s.mean - s2.mean).abs() < 1e-10);
            prop_assert!((s.std_dev - s2.std_dev).abs() < 1e-9);
            prop_assert!((s.max - s2.max).abs() < 1e-12);
        }
    }
}
