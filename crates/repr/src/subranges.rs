//! Subrange decomposition of a term's weight distribution.
//!
//! The basic method assumes every document containing term `t` carries the
//! same weight `w`. The subrange method (Section 3.1) instead partitions
//! the weight distribution into subranges and represents each subrange by
//! its median weight, approximated by a normal quantile
//! `w_mj = w + z(percentile_j) * sigma`.
//!
//! A [`SubrangeScheme`] is a list of [`Subrange`]s — `(median percentile,
//! probability-mass fraction)` — plus an optional *singleton top subrange*
//! holding only the maximum normalized weight with probability `1/n`
//! (Section 4: "the probability for the highest subrange is set to be 1
//! divided by the number of documents in the database").

use crate::representative::TermStats;
use serde::{Deserialize, Serialize};
use seu_stats::phi_inv;

/// One subrange of the weight distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subrange {
    /// Percentile (from the bottom, in `[0, 1]`) of the subrange median.
    pub median_percentile: f64,
    /// Fraction of the term's probability mass assigned to this subrange.
    pub mass_fraction: f64,
}

/// Where the top subrange's weight comes from (quadruplet vs triplet
/// representatives — Tables 1–6 vs Tables 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MaxWeightMode {
    /// Use the stored maximum normalized weight `mw` (quadruplets).
    #[default]
    Stored,
    /// Estimate the maximum as a normal percentile `w + z(q) * sigma`
    /// (triplets; the paper uses `q = 0.999`).
    Estimated {
        /// The percentile used for the estimate.
        percentile: f64,
    },
}

impl MaxWeightMode {
    /// The paper's triplet-mode estimate: the 99.9 percentile.
    pub fn estimated_999() -> Self {
        MaxWeightMode::Estimated { percentile: 0.999 }
    }

    /// Resolves the maximum weight for a term.
    pub fn max_weight(&self, stats: &TermStats) -> f64 {
        match *self {
            MaxWeightMode::Stored => stats.max,
            MaxWeightMode::Estimated { percentile } => {
                (stats.mean + phi_inv(percentile) * stats.std_dev).max(0.0)
            }
        }
    }
}

/// A full subrange decomposition scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubrangeScheme {
    /// Whether the highest subrange is the singleton `{max weight}` with
    /// probability `min(1/n, p)`.
    pub max_subrange: bool,
    /// Whether subrange median weights are clamped to the resolved
    /// maximum weight. Section 3.1's single-term argument ("the estimated
    /// numbers of documents with similarities greater than `T` in
    /// database `D2` and other databases are zero") implicitly requires
    /// no generating-function exponent to exceed the maximum normalized
    /// weight, so the default is `true`; set `false` to use the raw
    /// normal quantiles (ablation).
    pub clamp_to_max: bool,
    /// Remaining subranges; mass fractions must sum to 1 (they partition
    /// the term's probability mass after the top subrange's cut).
    pub subranges: Vec<Subrange>,
}

impl SubrangeScheme {
    /// The paper's experimental scheme (Section 4): a singleton max
    /// subrange plus five subranges with medians at the 98, 93.1, 70, 37.5
    /// and 12.5 percentiles.
    ///
    /// The mass fractions follow from the medians being the midpoints of
    /// the weight-rank intervals \[96,100\], \[90.2,96\], \[50,90.2\], \[25,50\]
    /// and \[0,25\] (in percent of the `k` documents containing the term):
    /// 4 %, 5.8 %, 40.2 %, 25 % and 25 %. "Narrower subranges are used for
    /// weights that are large because those weights are often more
    /// important … especially when the threshold is large."
    pub fn paper_six() -> Self {
        SubrangeScheme {
            max_subrange: true,
            clamp_to_max: true,
            subranges: vec![
                Subrange {
                    median_percentile: 0.98,
                    mass_fraction: 0.04,
                },
                Subrange {
                    median_percentile: 0.931,
                    mass_fraction: 0.058,
                },
                Subrange {
                    median_percentile: 0.70,
                    mass_fraction: 0.402,
                },
                Subrange {
                    median_percentile: 0.375,
                    mass_fraction: 0.25,
                },
                Subrange {
                    median_percentile: 0.125,
                    mass_fraction: 0.25,
                },
            ],
        }
    }

    /// The four-equal-subrange exposition scheme of Section 3.1 (medians at
    /// the 87.5, 62.5, 37.5 and 12.5 percentiles, no max subrange).
    pub fn four_equal() -> Self {
        Self::equal(4, false)
    }

    /// `k` equal-mass subranges; medians at the interval midpoints.
    /// Optionally adds the singleton max subrange on top.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn equal(k: usize, max_subrange: bool) -> Self {
        assert!(k > 0, "need at least one subrange");
        let frac = 1.0 / k as f64;
        let subranges = (0..k)
            .map(|i| Subrange {
                // i-th subrange from the top: midpoint of
                // [1-(i+1)/k, 1-i/k].
                median_percentile: 1.0 - (i as f64 + 0.5) * frac,
                mass_fraction: frac,
            })
            .collect();
        SubrangeScheme {
            max_subrange,
            clamp_to_max: true,
            subranges,
        }
    }

    /// Degenerate single-subrange scheme — reduces the estimator to the
    /// basic method of Proposition 1 (every containing document carries the
    /// mean weight). Useful as an ablation anchor.
    pub fn single() -> Self {
        SubrangeScheme {
            max_subrange: false,
            clamp_to_max: true,
            subranges: vec![Subrange {
                median_percentile: 0.5,
                mass_fraction: 1.0,
            }],
        }
    }

    /// Decomposes one term's statistics into `(probability, weight)`
    /// spikes for the generating function (Expression (8) generalized).
    ///
    /// * the singleton max subrange (if enabled) gets
    ///   `p_top = min(1/n, p)` at the resolved max weight;
    /// * the remaining mass `p - p_top` is split by `mass_fraction` at
    ///   weights `w + z(percentile) * sigma`, clamped below at 0 (a
    ///   negative normalized weight is impossible) and — when
    ///   `clamp_to_max` is set, the default — above at the resolved
    ///   maximum weight, which is what makes the single-term
    ///   identification guarantee exact in both directions.
    ///
    /// Weights are *not* yet multiplied by the query term weight `u`; the
    /// estimator does that when forming exponents.
    pub fn decompose(
        &self,
        stats: &TermStats,
        n_docs: u64,
        max_mode: MaxWeightMode,
    ) -> Vec<(f64, f64)> {
        let p = stats.p;
        if p <= 0.0 || n_docs == 0 {
            return Vec::new();
        }
        let mut spikes = Vec::with_capacity(self.subranges.len() + 1);
        let max_w = max_mode.max_weight(stats);
        let mut remaining = p;
        if self.max_subrange {
            let p_top = (1.0 / n_docs as f64).min(p);
            spikes.push((p_top, max_w));
            remaining -= p_top;
        }
        if remaining > 0.0 {
            for sr in &self.subranges {
                let mut w = (stats.mean + phi_inv(sr.median_percentile) * stats.std_dev).max(0.0);
                if self.clamp_to_max {
                    w = w.min(max_w.max(0.0));
                }
                spikes.push((remaining * sr.mass_fraction, w));
            }
        }
        spikes
    }

    /// Total mass fraction of the non-top subranges (should be 1).
    pub fn total_fraction(&self) -> f64 {
        self.subranges.iter().map(|s| s.mass_fraction).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(p: f64, mean: f64, sd: f64, max: f64) -> TermStats {
        TermStats {
            p,
            mean,
            std_dev: sd,
            max,
        }
    }

    #[test]
    fn schemes_have_unit_fraction() {
        for s in [
            SubrangeScheme::paper_six(),
            SubrangeScheme::four_equal(),
            SubrangeScheme::equal(2, true),
            SubrangeScheme::equal(8, false),
            SubrangeScheme::single(),
        ] {
            assert!((s.total_fraction() - 1.0).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn paper_example_3_3_four_subrange() {
        // w = 2.8, sigma = 1.3, p = 0.32, four equal subranges.
        // Expected medians: 4.295, 3.2134, 2.3866, 1.305; probs 0.08 each.
        let scheme = SubrangeScheme::four_equal();
        let st = stats(0.32, 2.8, 1.3, 10.0);
        let spikes = scheme.decompose(&st, 1000, MaxWeightMode::Stored);
        assert_eq!(spikes.len(), 4);
        let expect_w = [4.295, 3.2134, 2.3866, 1.305];
        for (i, &(p, w)) in spikes.iter().enumerate() {
            assert!((p - 0.08).abs() < 1e-12, "prob {i}");
            assert!((w - expect_w[i]).abs() < 2e-3, "weight {i}: {w}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let st = stats(0.4, 0.3, 0.1, 0.9);
        for scheme in [
            SubrangeScheme::paper_six(),
            SubrangeScheme::four_equal(),
            SubrangeScheme::equal(6, true),
        ] {
            let spikes = scheme.decompose(&st, 500, MaxWeightMode::Stored);
            let total: f64 = spikes.iter().map(|&(p, _)| p).sum();
            assert!((total - 0.4).abs() < 1e-12, "{scheme:?}");
        }
    }

    #[test]
    fn top_subrange_is_singleton_max() {
        let st = stats(0.4, 0.3, 0.1, 0.9);
        let n = 500;
        let spikes = SubrangeScheme::paper_six().decompose(&st, n, MaxWeightMode::Stored);
        assert!((spikes[0].0 - 1.0 / n as f64).abs() < 1e-15);
        assert_eq!(spikes[0].1, 0.9);
    }

    #[test]
    fn top_probability_caps_at_p() {
        // Rare term: p < 1/n.
        let st = stats(0.0005, 0.3, 0.0, 0.3);
        let spikes = SubrangeScheme::paper_six().decompose(&st, 1000, MaxWeightMode::Stored);
        assert!((spikes[0].0 - 0.0005).abs() < 1e-15);
        // Everything is in the top subrange; remainder spikes are zero.
        let rest: f64 = spikes[1..].iter().map(|&(p, _)| p).sum();
        assert!(rest.abs() < 1e-15);
    }

    #[test]
    fn clamping_modes() {
        // Large sigma pushes naive quantile weights negative and above
        // the stored max.
        let st = stats(0.5, 0.2, 1.0, 0.6);
        let clamped = SubrangeScheme::paper_six().decompose(&st, 100, MaxWeightMode::Stored);
        for &(_, w) in &clamped {
            assert!((0.0..=0.6 + 1e-12).contains(&w), "w={w}");
        }
        assert!(clamped.iter().any(|&(_, w)| w == 0.0), "lower clamp");

        let mut scheme = SubrangeScheme::paper_six();
        scheme.clamp_to_max = false;
        let raw = scheme.decompose(&st, 100, MaxWeightMode::Stored);
        assert!(
            raw.iter().any(|&(_, w)| w > 0.6),
            "unclamped 98-percentile median should exceed the max here"
        );
        for &(_, w) in &raw {
            assert!(w >= 0.0, "lower clamp always applies");
        }
    }

    #[test]
    fn zero_sigma_collapses_to_mean() {
        let st = stats(0.3, 0.25, 0.0, 0.25);
        let spikes = SubrangeScheme::four_equal().decompose(&st, 100, MaxWeightMode::Stored);
        for &(_, w) in &spikes {
            assert_eq!(w, 0.25);
        }
    }

    #[test]
    fn estimated_max_mode_uses_999_percentile() {
        let st = stats(0.3, 0.2, 0.05, 0.9);
        let m = MaxWeightMode::estimated_999().max_weight(&st);
        // 0.2 + 3.0902 * 0.05 = 0.3545 — ignores the stored max.
        assert!((m - 0.3545).abs() < 1e-3, "m={m}");
        assert_eq!(MaxWeightMode::Stored.max_weight(&st), 0.9);
    }

    #[test]
    fn absent_term_decomposes_to_nothing() {
        let st = stats(0.0, 0.0, 0.0, 0.0);
        assert!(SubrangeScheme::paper_six()
            .decompose(&st, 100, MaxWeightMode::Stored)
            .is_empty());
    }

    #[test]
    fn single_scheme_is_basic_method() {
        let st = stats(0.6, 0.45, 0.2, 0.9);
        let spikes = SubrangeScheme::single().decompose(&st, 100, MaxWeightMode::Stored);
        assert_eq!(spikes.len(), 1);
        assert!((spikes[0].0 - 0.6).abs() < 1e-15);
        // z(0.5) = 0 (up to the quantile approximation error) -> the mean.
        assert!((spikes[0].1 - 0.45).abs() < 1e-6);
    }
}
