//! One-byte-per-number representative compression (Section 3.2).
//!
//! Probabilities are quantized over the fixed interval `[0, 1]`; means,
//! standard deviations and maxima over their observed ranges. Each stored
//! value becomes the average of the training values in its 256-level
//! interval, exactly the paper's scheme. Tables 7–9 show estimation
//! quality is essentially unchanged.

use crate::representative::{Representative, TermStats};
use seu_stats::ByteQuantizer;
use seu_text::TermId;

/// A representative with every number stored as one byte.
#[derive(Debug, Clone)]
pub struct QuantizedRepresentative {
    n_docs: u64,
    collection_bytes: u64,
    rows: usize,
    /// `(term, [p, mean, std_dev, max] codes)` for present terms.
    codes: Vec<(TermId, [u8; 4])>,
    quantizers: [ByteQuantizer; 4],
}

impl QuantizedRepresentative {
    /// Quantizes a full representative.
    pub fn from_representative(repr: &Representative) -> Self {
        let ps: Vec<f64> = repr.iter().map(|(_, s)| s.p).collect();
        let means: Vec<f64> = repr.iter().map(|(_, s)| s.mean).collect();
        let sds: Vec<f64> = repr.iter().map(|(_, s)| s.std_dev).collect();
        let maxes: Vec<f64> = repr.iter().map(|(_, s)| s.max).collect();
        let quantizers = [
            ByteQuantizer::train_with_range(ps.iter().copied(), 0.0, 1.0),
            ByteQuantizer::train(means.iter().copied()),
            ByteQuantizer::train(sds.iter().copied()),
            ByteQuantizer::train(maxes.iter().copied()),
        ];
        let codes = repr
            .iter()
            .map(|(t, s)| {
                (
                    t,
                    [
                        quantizers[0].encode(s.p),
                        quantizers[1].encode(s.mean),
                        quantizers[2].encode(s.std_dev),
                        quantizers[3].encode(s.max),
                    ],
                )
            })
            .collect();
        QuantizedRepresentative {
            n_docs: repr.n_docs(),
            collection_bytes: repr.collection_bytes(),
            rows: repr.table_len(),
            codes,
            quantizers,
        }
    }

    /// Number of documents in the summarized database.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Number of present terms.
    pub fn distinct_terms(&self) -> usize {
        self.codes.len()
    }

    /// Bytes of the summarized collection (the paper's |db| accounting).
    pub fn collection_bytes(&self) -> u64 {
        self.collection_bytes
    }

    /// Rows of the decoded stats table (the source collection's
    /// vocabulary size).
    pub fn table_len(&self) -> usize {
        self.rows
    }

    /// The per-term one-byte codes, in ascending term-id order.
    pub fn codes(&self) -> &[(TermId, [u8; 4])] {
        &self.codes
    }

    /// The four trained quantizers, in `[p, mean, std_dev, max]` order.
    pub fn quantizers(&self) -> &[ByteQuantizer; 4] {
        &self.quantizers
    }

    /// Reassembles a quantized representative from persisted parts (the
    /// inverse of the accessors above). Returns `None` if any code's
    /// term id falls outside the `rows`-entry table, so corrupted input
    /// cannot build a value whose [`QuantizedRepresentative::decode`]
    /// would panic.
    pub fn from_parts(
        n_docs: u64,
        collection_bytes: u64,
        rows: usize,
        codes: Vec<(TermId, [u8; 4])>,
        quantizers: [ByteQuantizer; 4],
    ) -> Option<Self> {
        codes
            .iter()
            .all(|(t, _)| t.index() < rows)
            .then_some(QuantizedRepresentative {
                n_docs,
                collection_bytes,
                rows,
                codes,
                quantizers,
            })
    }

    /// Stored size: 4 bytes of term id + 4 one-byte numbers per term
    /// (the reconstruction tables are constant-size overhead: 4 * 256
    /// f32 values).
    pub fn size_bytes(&self) -> u64 {
        8 * self.codes.len() as u64 + 4 * 256 * 4
    }

    /// Reconstructs a full-precision [`Representative`] view with every
    /// number replaced by its dequantized value — what the estimators
    /// consume in the Tables 7–9 experiments.
    pub fn decode(&self) -> Representative {
        let mut stats = vec![
            TermStats {
                p: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                max: 0.0,
            };
            self.rows
        ];
        for &(term, code) in &self.codes {
            stats[term.index()] = TermStats {
                // Guard: decoded p of a present term must stay positive so
                // the term is not dropped from the table.
                p: self.quantizers[0].decode(code[0]).max(f64::MIN_POSITIVE),
                mean: self.quantizers[1].decode(code[1]),
                std_dev: self.quantizers[2].decode(code[2]).max(0.0),
                max: self.quantizers[3].decode(code[3]),
            };
        }
        Representative::from_parts(self.n_docs, stats, self.collection_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn repr() -> Representative {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for i in 0..50 {
            let text = match i % 4 {
                0 => "alpha beta gamma alpha",
                1 => "beta gamma delta",
                2 => "gamma delta epsilon epsilon",
                _ => "alpha epsilon zeta",
            };
            b.add_document(&format!("d{i}"), text);
        }
        Representative::build(&b.build())
    }

    #[test]
    fn round_trip_error_is_small() {
        let r = repr();
        let q = QuantizedRepresentative::from_representative(&r);
        let r2 = q.decode();
        assert_eq!(r2.n_docs(), r.n_docs());
        assert_eq!(r2.distinct_terms(), r.distinct_terms());
        for (term, s) in r.iter() {
            let s2 = r2.get(term).expect("term survives quantization");
            assert!((s.p - s2.p).abs() <= 1.0 / 256.0 + 1e-9, "p");
            assert!((s.mean - s2.mean).abs() <= 1.0 / 256.0 + 1e-9, "mean");
        }
    }

    #[test]
    fn size_is_8_bytes_per_term_plus_tables() {
        let r = repr();
        let q = QuantizedRepresentative::from_representative(&r);
        assert_eq!(q.size_bytes(), 8 * r.distinct_terms() as u64 + 4 * 256 * 4);
        assert!(q.size_bytes() < r.size_bytes_quadruplet() + 4 * 256 * 4);
    }

    #[test]
    fn present_terms_stay_present() {
        let r = repr();
        let r2 = QuantizedRepresentative::from_representative(&r).decode();
        for (term, _) in r.iter() {
            assert!(r2.get(term).is_some());
        }
    }

    #[test]
    fn empty_representative() {
        let b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        let r = Representative::build(&b.build());
        let q = QuantizedRepresentative::from_representative(&r);
        assert_eq!(q.distinct_terms(), 0);
        assert_eq!(q.decode().distinct_terms(), 0);
    }
}
