//! Pairwise term co-occurrence statistics — the optional representative
//! extension for dependence-aware estimation.
//!
//! Proposition 1 assumes query terms occur independently across
//! documents; real text violates that (terms of one subject co-occur).
//! The paper's related work (\[14\], Lam & Yu) extends estimation with
//! term dependencies; this module supplies the broker-side statistic it
//! needs: the *joint document frequency* of term pairs.
//!
//! Storing all `O(m^2)` pairs is out of the question, so the builder
//! keeps the `max_pairs` pairs with the largest joint document frequency
//! — exactly the pairs where independence errs most in absolute terms.
//! At 12 bytes a pair this stays a small additive cost to the
//! representative (reported by [`CooccurrenceStats::size_bytes`]).

use seu_engine::Collection;
use seu_text::TermId;
use std::collections::HashMap;

/// Joint document frequencies for high-co-occurrence term pairs.
#[derive(Debug, Clone, Default)]
pub struct CooccurrenceStats {
    n_docs: u64,
    /// `(t1, t2)` with `t1 < t2` → number of documents containing both.
    pairs: HashMap<(TermId, TermId), u32>,
}

impl CooccurrenceStats {
    /// Counts pairwise co-occurrence over a collection, keeping the
    /// `max_pairs` most frequent pairs. Documents longer than
    /// `max_doc_terms` distinct terms only contribute their
    /// `max_doc_terms` highest-weighted terms (quadratic guard).
    pub fn build(collection: &Collection, max_pairs: usize, max_doc_terms: usize) -> Self {
        let mut counts: HashMap<(TermId, TermId), u32> = HashMap::new();
        for doc in collection.docs() {
            // Top-weighted distinct terms of the document.
            let mut terms: Vec<(TermId, f64)> = doc.terms.clone();
            if terms.len() > max_doc_terms {
                terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                terms.truncate(max_doc_terms);
                terms.sort_by_key(|&(t, _)| t);
            }
            for i in 0..terms.len() {
                for j in i + 1..terms.len() {
                    *counts.entry((terms[i].0, terms[j].0)).or_insert(0) += 1;
                }
            }
        }
        // Keep the heaviest pairs.
        let mut all: Vec<((TermId, TermId), u32)> = counts.into_iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(max_pairs);
        CooccurrenceStats {
            n_docs: collection.len() as u64,
            pairs: all.into_iter().collect(),
        }
    }

    /// Number of documents the statistics were computed over.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Joint probability `P(t1 ∧ t2)` if the pair is stored (order of the
    /// arguments does not matter).
    pub fn joint_p(&self, a: TermId, b: TermId) -> Option<f64> {
        if self.n_docs == 0 {
            return None;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs
            .get(&key)
            .map(|&df| df as f64 / self.n_docs as f64)
    }

    /// Storage cost: two 4-byte term ids + one 4-byte count per pair.
    pub fn size_bytes(&self) -> u64 {
        12 * self.pairs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection() -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "alpha beta");
        b.add_document("d1", "alpha beta gamma");
        b.add_document("d2", "alpha gamma");
        b.add_document("d3", "delta");
        b.build()
    }

    #[test]
    fn joint_frequencies_are_counted() {
        let c = collection();
        let stats = CooccurrenceStats::build(&c, 100, 64);
        let alpha = c.vocab().get("alpha").unwrap();
        let beta = c.vocab().get("beta").unwrap();
        let gamma = c.vocab().get("gamma").unwrap();
        let delta = c.vocab().get("delta").unwrap();
        assert_eq!(stats.joint_p(alpha, beta), Some(0.5)); // d0, d1
        assert_eq!(stats.joint_p(beta, alpha), Some(0.5)); // symmetric
        assert_eq!(stats.joint_p(alpha, gamma), Some(0.5)); // d1, d2
        assert_eq!(stats.joint_p(beta, gamma), Some(0.25)); // d1
        assert_eq!(stats.joint_p(alpha, delta), None); // never co-occur
        assert_eq!(stats.n_docs(), 4);
    }

    #[test]
    fn max_pairs_keeps_heaviest() {
        let c = collection();
        let stats = CooccurrenceStats::build(&c, 2, 64);
        assert_eq!(stats.len(), 2);
        // The two df-2 pairs survive; the df-1 pair is dropped.
        let alpha = c.vocab().get("alpha").unwrap();
        let beta = c.vocab().get("beta").unwrap();
        let gamma = c.vocab().get("gamma").unwrap();
        assert!(stats.joint_p(alpha, beta).is_some());
        assert!(stats.joint_p(alpha, gamma).is_some());
        assert!(stats.joint_p(beta, gamma).is_none());
    }

    #[test]
    fn doc_term_cap_bounds_work() {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        // One long document; with the cap at 3 only C(3,2)=3 pairs arise.
        b.add_document("big", "one two three four five six");
        let c = b.build();
        let stats = CooccurrenceStats::build(&c, 100, 3);
        assert_eq!(stats.len(), 3);
    }

    #[test]
    fn size_accounting() {
        let c = collection();
        let stats = CooccurrenceStats::build(&c, 100, 64);
        assert_eq!(stats.size_bytes(), 12 * stats.len() as u64);
        assert!(!stats.is_empty());
    }

    #[test]
    fn empty_collection() {
        let b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        let stats = CooccurrenceStats::build(&b.build(), 10, 10);
        assert!(stats.is_empty());
        assert_eq!(stats.joint_p(TermId(0), TermId(1)), None);
    }
}
