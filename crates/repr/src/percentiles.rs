//! Exact-percentile representatives — the "expensive" alternative the
//! paper's normal approximation replaces.
//!
//! Section 3.1: "Since it is expensive to find and to store `w_m1`,
//! `w_m2`, `w_m3` and `w_m4`, they are approximated by assuming that the
//! weight distribution of the term is normal." This module implements the
//! expensive variant: for every term, the *true* subrange median weights
//! are computed from the sorted weights at build time and stored
//! verbatim. The cost is explicit ([`PercentileRepresentative::
//! size_bytes`]: 4 extra bytes per term per stored median); experiment
//! E20 measures what the normal approximation actually gives up on
//! skewed real-text weight distributions.

use crate::representative::Representative;
use crate::subranges::SubrangeScheme;
use seu_engine::Collection;
use seu_stats::percentile_linear;
use seu_text::TermId;

/// Per-term exact subrange medians, aligned with one [`SubrangeScheme`].
#[derive(Debug, Clone)]
pub struct PercentileRepresentative {
    /// The scheme the medians were computed for.
    scheme: SubrangeScheme,
    /// Per term (indexed by `TermId`): the exact median weight of each
    /// non-top subrange, in scheme order. Empty for absent terms.
    medians: Vec<Vec<f64>>,
}

impl PercentileRepresentative {
    /// Computes exact subrange medians for every term of a collection.
    pub fn build(collection: &Collection, scheme: SubrangeScheme) -> Self {
        // Gather each term's normalized weights.
        let mut weights: Vec<Vec<f64>> = vec![Vec::new(); collection.vocab().len()];
        for doc in collection.docs() {
            for &(term, w) in &doc.terms {
                weights[term.index()].push(w);
            }
        }
        let medians = weights
            .into_iter()
            .map(|mut ws| {
                if ws.is_empty() {
                    return Vec::new();
                }
                ws.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
                scheme
                    .subranges
                    .iter()
                    .map(|sr| percentile_linear(&ws, sr.median_percentile))
                    .collect()
            })
            .collect();
        PercentileRepresentative { scheme, medians }
    }

    /// The scheme the medians belong to.
    pub fn scheme(&self) -> &SubrangeScheme {
        &self.scheme
    }

    /// The exact medians for a term (empty slice if absent).
    pub fn medians(&self, term: TermId) -> &[f64] {
        self.medians
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Decomposes one query term into `(probability, weight)` spikes like
    /// [`SubrangeScheme::decompose`], but with the stored exact medians in
    /// place of the normal quantiles. The singleton max subrange (if the
    /// scheme has one) still uses the representative's stored max weight.
    pub fn decompose(&self, repr: &Representative, term: TermId) -> Vec<(f64, f64)> {
        let Some(stats) = repr.get(term) else {
            return Vec::new();
        };
        let meds = self.medians(term);
        if meds.len() != self.scheme.subranges.len() || repr.n_docs() == 0 {
            return Vec::new();
        }
        let mut spikes = Vec::with_capacity(meds.len() + 1);
        let mut remaining = stats.p;
        if self.scheme.max_subrange {
            let p_top = (1.0 / repr.n_docs() as f64).min(stats.p);
            spikes.push((p_top, stats.max));
            remaining -= p_top;
        }
        if remaining > 0.0 {
            for (sr, &w) in self.scheme.subranges.iter().zip(meds) {
                spikes.push((remaining * sr.mass_fraction, w));
            }
        }
        spikes
    }

    /// Storage cost of the medians: 4 bytes per stored median per present
    /// term (on top of the base representative).
    pub fn size_bytes(&self) -> u64 {
        self.medians.iter().map(|m| 4 * m.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection() -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        // Term "xx" appears in docs of different lengths, giving a
        // spread of normalized weights.
        b.add_document("d0", "xx");
        b.add_document("d1", "xx pad1");
        b.add_document("d2", "xx pad1 pad2");
        b.add_document("d3", "xx pad1 pad2 pad3");
        b.add_document("d4", "xx pad1 pad2 pad3 pad4");
        b.add_document("d5", "none here");
        b.build()
    }

    #[test]
    fn medians_are_true_percentiles() {
        let c = collection();
        let pr = PercentileRepresentative::build(&c, SubrangeScheme::four_equal());
        let x = c.vocab().get("xx").unwrap();
        let meds = pr.medians(x);
        assert_eq!(meds.len(), 4);
        // Weights of xx: 1, 1/sqrt2, 1/sqrt3, 1/2, 1/sqrt5 (descending-ish).
        // Medians are descending in scheme order (87.5, 62.5, 37.5, 12.5).
        for w in meds.windows(2) {
            assert!(w[0] >= w[1], "{meds:?}");
        }
        // Bounded by the observed extremes.
        let repr = Representative::build(&c);
        let s = repr.get(x).unwrap();
        assert!(meds[0] <= s.max + 1e-12);
        assert!(*meds.last().unwrap() >= 1.0 / 5f64.sqrt() - 1e-12);
    }

    #[test]
    fn decompose_conserves_mass() {
        let c = collection();
        let repr = Representative::build(&c);
        let pr = PercentileRepresentative::build(&c, SubrangeScheme::paper_six());
        for (term, s) in repr.iter() {
            let spikes = pr.decompose(&repr, term);
            let mass: f64 = spikes.iter().map(|&(p, _)| p).sum();
            assert!((mass - s.p).abs() < 1e-12);
        }
    }

    #[test]
    fn absent_terms_are_empty() {
        let c = collection();
        let repr = Representative::build(&c);
        let pr = PercentileRepresentative::build(&c, SubrangeScheme::paper_six());
        assert!(pr.medians(TermId(9999)).is_empty());
        assert!(pr.decompose(&repr, TermId(9999)).is_empty());
    }

    #[test]
    fn size_accounting() {
        let c = collection();
        let pr = PercentileRepresentative::build(&c, SubrangeScheme::paper_six());
        // 5 non-top subranges * 4 bytes * present terms.
        let present = Representative::build(&c).distinct_terms() as u64;
        assert_eq!(pr.size_bytes(), 5 * 4 * present);
    }
}
