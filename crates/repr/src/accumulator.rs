//! Incremental, mergeable representative construction.
//!
//! The paper's architecture (Section 1) assumes local updates "may need
//! to be propagated to the metadata that represent the contents of local
//! databases, \[but\] the propagation can be done infrequently as the
//! metadata are typically statistical". That requires the engine side to
//! maintain its per-term statistics *incrementally* as documents arrive,
//! and to snapshot them cheaply whenever the broker asks.
//!
//! [`RepresentativeAccumulator`] does exactly that: per-term Welford
//! moments folded one document at a time, merged across parallel indexing
//! shards, snapshotted into a [`Representative`] in O(vocabulary).
//!
//! Under the cosine weighting schemes a document's normalized weights do
//! not depend on any collection-wide statistic, so accumulation is
//! *exact*: the snapshot equals [`Representative::build`] on the same
//! documents. Under tf–idf or pivoted normalization the weights shift as
//! the collection grows; there the accumulator is the (standard)
//! approximation that defers re-weighting to the next full rebuild.

use crate::representative::{Representative, TermStats};
use seu_engine::Document;
use seu_stats::Moments;

/// Streaming builder of a database representative.
#[derive(Debug, Clone, Default)]
pub struct RepresentativeAccumulator {
    n_docs: u64,
    collection_bytes: u64,
    /// Per-term weight moments, indexed by `TermId` (grows on demand).
    acc: Vec<Moments>,
}

impl RepresentativeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one already-weighted document (its `terms` carry the
    /// normalized weights), accounting `raw_bytes` of source text.
    pub fn add_document(&mut self, doc: &Document, raw_bytes: u64) {
        self.n_docs += 1;
        self.collection_bytes += raw_bytes;
        for &(term, weight) in &doc.terms {
            let idx = term.index();
            if idx >= self.acc.len() {
                self.acc.resize(idx + 1, Moments::new());
            }
            self.acc[idx].push(weight);
        }
    }

    /// Folds in a document given directly as `(TermId, weight)` pairs.
    pub fn add_weights(
        &mut self,
        weights: impl IntoIterator<Item = (seu_text::TermId, f64)>,
        raw_bytes: u64,
    ) {
        self.n_docs += 1;
        self.collection_bytes += raw_bytes;
        for (term, weight) in weights {
            let idx = term.index();
            if idx >= self.acc.len() {
                self.acc.resize(idx + 1, Moments::new());
            }
            self.acc[idx].push(weight);
        }
    }

    /// Merges another accumulator (e.g. a parallel indexing shard). Both
    /// sides must index term ids against the same vocabulary.
    pub fn merge(&mut self, other: &RepresentativeAccumulator) {
        self.n_docs += other.n_docs;
        self.collection_bytes += other.collection_bytes;
        if other.acc.len() > self.acc.len() {
            self.acc.resize(other.acc.len(), Moments::new());
        }
        for (mine, theirs) in self.acc.iter_mut().zip(&other.acc) {
            mine.merge(theirs);
        }
    }

    /// Number of documents folded in so far.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Snapshots the current statistics into a representative the broker
    /// can use immediately.
    pub fn snapshot(&self) -> Representative {
        let n = self.n_docs;
        let stats = self
            .acc
            .iter()
            .map(|m| TermStats {
                p: if n == 0 {
                    0.0
                } else {
                    m.count() as f64 / n as f64
                },
                mean: m.mean(),
                std_dev: m.std_dev(),
                max: m.max(),
            })
            .collect();
        Representative::from_parts(n, stats, self.collection_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{Collection, CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection() -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "alpha beta alpha");
        b.add_document("d1", "beta gamma");
        b.add_document("d2", "alpha gamma gamma gamma");
        b.add_document("d3", "delta");
        b.build()
    }

    fn assert_repr_eq(a: &Representative, b: &Representative) {
        assert_eq!(a.n_docs(), b.n_docs());
        assert_eq!(a.distinct_terms(), b.distinct_terms());
        for (term, s) in a.iter() {
            let s2 = b.get(term).expect("term present");
            assert!((s.p - s2.p).abs() < 1e-12);
            assert!((s.mean - s2.mean).abs() < 1e-12);
            assert!((s.std_dev - s2.std_dev).abs() < 1e-10);
            assert!((s.max - s2.max).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulation_matches_batch_build() {
        let c = collection();
        let batch = Representative::build(&c);
        let mut acc = RepresentativeAccumulator::new();
        for doc in c.docs() {
            acc.add_document(doc, 0);
        }
        assert_repr_eq(&acc.snapshot(), &batch);
    }

    #[test]
    fn sharded_merge_matches_batch_build() {
        let c = collection();
        let batch = Representative::build(&c);
        let mut shard_a = RepresentativeAccumulator::new();
        let mut shard_b = RepresentativeAccumulator::new();
        for (i, doc) in c.docs().iter().enumerate() {
            if i % 2 == 0 {
                shard_a.add_document(doc, 0);
            } else {
                shard_b.add_document(doc, 0);
            }
        }
        shard_a.merge(&shard_b);
        assert_repr_eq(&shard_a.snapshot(), &batch);
    }

    #[test]
    fn incremental_snapshots_track_growth() {
        let c = collection();
        let mut acc = RepresentativeAccumulator::new();
        let mut prev_terms = 0;
        for doc in c.docs() {
            acc.add_document(doc, 10);
            let snap = acc.snapshot();
            assert!(snap.distinct_terms() >= prev_terms);
            prev_terms = snap.distinct_terms();
        }
        assert_eq!(acc.snapshot().collection_bytes(), 40);
        assert_eq!(acc.n_docs(), 4);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let c = collection();
        let mut acc = RepresentativeAccumulator::new();
        for doc in c.docs() {
            acc.add_document(doc, 0);
        }
        let before = acc.snapshot();
        acc.merge(&RepresentativeAccumulator::new());
        assert_repr_eq(&acc.snapshot(), &before);
        let mut empty = RepresentativeAccumulator::new();
        empty.merge(&acc);
        assert_repr_eq(&empty.snapshot(), &before);
    }

    #[test]
    fn empty_accumulator_snapshot() {
        let snap = RepresentativeAccumulator::new().snapshot();
        assert_eq!(snap.n_docs(), 0);
        assert_eq!(snap.distinct_terms(), 0);
    }
}
