//! Database representatives — the broker-side metadata of Section 3.
//!
//! A metasearch broker does not hold the documents of a local search
//! engine, only a compact statistical summary. In the paper a database
//! with `m` distinct terms is represented as `m` quadruplets
//! `(p_i, w_i, sigma_i, mw_i)`:
//!
//! * `p_i` — probability that term `t_i` appears in a document,
//! * `w_i` — average *normalized* weight of `t_i` over the documents
//!   containing it,
//! * `sigma_i` — standard deviation of those weights,
//! * `mw_i` — the maximum normalized weight (the critical parameter for
//!   single-term correctness; Tables 10–12 drop it to triplets).
//!
//! This crate provides:
//!
//! * [`Representative`] — the quadruplet table, built in one pass from a
//!   [`seu_engine::Collection`], with binary (de)serialization and the
//!   §3.2 size accounting;
//! * [`SubrangeScheme`] — how a term's weight distribution is decomposed
//!   into subrange spikes for the generating function (the paper's
//!   six-subrange experimental scheme, the four-equal exposition scheme,
//!   and arbitrary equal-`k` schemes for ablation);
//! * [`QuantizedRepresentative`] — the one-byte-per-number compressed form
//!   of §3.2 (Tables 7–9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod cooccur;
pub mod percentiles;
pub mod portable;
pub mod quantized;
pub mod representative;
pub mod subranges;

pub use accumulator::RepresentativeAccumulator;
pub use cooccur::CooccurrenceStats;
pub use percentiles::PercentileRepresentative;
pub use portable::{FrozenSummary, PortableRepresentative};
pub use quantized::QuantizedRepresentative;
pub use representative::{Representative, SizeReport, TermStats, PAGE_BYTES};
pub use subranges::{MaxWeightMode, Subrange, SubrangeScheme};
