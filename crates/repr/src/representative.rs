//! The quadruplet table and its size accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use seu_engine::Collection;
use seu_stats::Moments;
use seu_text::TermId;

/// Pages of 2 KB, the unit of the paper's §3.2 size table.
pub const PAGE_BYTES: u64 = 2048;

/// Per-term statistics: the paper's `(p, w, sigma, mw)` quadruplet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TermStats {
    /// Probability that the term appears in a document (`df / n`).
    pub p: f64,
    /// Mean normalized weight over the documents containing the term.
    pub mean: f64,
    /// Standard deviation of those normalized weights (population).
    pub std_dev: f64,
    /// Maximum normalized weight of the term in any document.
    pub max: f64,
}

/// The representative of one search engine's database.
///
/// # Examples
///
/// ```
/// use seu_engine::{CollectionBuilder, WeightingScheme};
/// use seu_repr::Representative;
/// use seu_text::Analyzer;
///
/// let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
/// b.add_document("d0", "alpha beta");
/// b.add_document("d1", "alpha gamma gamma");
/// let collection = b.build();
///
/// let repr = Representative::build(&collection);
/// assert_eq!(repr.n_docs(), 2);
/// let alpha = collection.vocab().get("alpha").unwrap();
/// let stats = repr.get(alpha).unwrap();
/// assert!((stats.p - 1.0).abs() < 1e-12); // alpha is in both documents
///
/// // Ship it over the wire and back (20 bytes per distinct term).
/// let again = Representative::from_bytes(repr.to_bytes()).unwrap();
/// assert_eq!(again.distinct_terms(), repr.distinct_terms());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Representative {
    n_docs: u64,
    /// Dense per-term table indexed by `TermId`; `p == 0` marks terms that
    /// occur in no document (possible after quantization round-trips, never
    /// from `build` on a vocabulary produced by the same collection).
    stats: Vec<TermStats>,
    /// Raw byte size of the summarized collection, for the §3.2 ratio.
    collection_bytes: u64,
}

impl Representative {
    /// Builds the representative in one pass over a collection.
    pub fn build(collection: &Collection) -> Self {
        let mut acc: Vec<Moments> = vec![Moments::new(); collection.vocab().len()];
        for doc in collection.docs() {
            for &(term, weight) in &doc.terms {
                acc[term.index()].push(weight);
            }
        }
        let n = collection.len() as u64;
        let stats = acc
            .into_iter()
            .map(|m| TermStats {
                p: if n == 0 {
                    0.0
                } else {
                    m.count() as f64 / n as f64
                },
                mean: m.mean(),
                std_dev: m.std_dev(),
                max: m.max(),
            })
            .collect();
        Representative {
            n_docs: n,
            stats,
            collection_bytes: collection.raw_bytes(),
        }
    }

    /// Constructs a representative from raw parts (used by the quantizer
    /// and by tests).
    pub fn from_parts(n_docs: u64, stats: Vec<TermStats>, collection_bytes: u64) -> Self {
        Representative {
            n_docs,
            stats,
            collection_bytes,
        }
    }

    /// Number of documents `n` in the summarized database.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Number of table rows (vocabulary size of the collection).
    pub fn table_len(&self) -> usize {
        self.stats.len()
    }

    /// Number of distinct terms actually present (`p > 0`), the `k` of the
    /// paper's size formulas.
    pub fn distinct_terms(&self) -> usize {
        self.stats.iter().filter(|s| s.p > 0.0).count()
    }

    /// Statistics for a term; `None` if the term occurs in no document.
    pub fn get(&self, term: TermId) -> Option<&TermStats> {
        self.stats.get(term.index()).filter(|s| s.p > 0.0)
    }

    /// Approximate heap + inline footprint of this representative in
    /// bytes — the broker's `broker_representative_bytes_resident` gauge
    /// sums this over its registry.
    pub fn bytes_resident(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.stats.capacity() * std::mem::size_of::<TermStats>())
            as u64
    }

    /// All `(TermId, &TermStats)` rows with `p > 0`.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &TermStats)> {
        self.stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.p > 0.0)
            .map(|(i, s)| (TermId(i as u32), s))
    }

    /// Raw byte size of the summarized collection.
    pub fn collection_bytes(&self) -> u64 {
        self.collection_bytes
    }

    /// §3.2 accounting: bytes for the full quadruplet representative —
    /// 4 bytes of term id plus four 4-byte numbers per distinct term.
    pub fn size_bytes_quadruplet(&self) -> u64 {
        20 * self.distinct_terms() as u64
    }

    /// Bytes for a triplet representative (no stored max): 4 + 3*4.
    pub fn size_bytes_triplet(&self) -> u64 {
        16 * self.distinct_terms() as u64
    }

    /// Bytes for the one-byte quantized quadruplet form: 4 + 4*1.
    pub fn size_bytes_quantized(&self) -> u64 {
        8 * self.distinct_terms() as u64
    }

    /// The §3.2 size table row for this database.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            collection_pages: self.collection_bytes.div_ceil(PAGE_BYTES),
            distinct_terms: self.distinct_terms() as u64,
            representative_pages: self.size_bytes_quadruplet().div_ceil(PAGE_BYTES),
            quantized_pages: self.size_bytes_quantized().div_ceil(PAGE_BYTES),
        }
    }

    /// Serializes to a compact binary representation (what a broker would
    /// ship over the network): header `(n_docs, rows, collection_bytes)`
    /// then one `(term_id, p, mean, std_dev, max)` row per present term,
    /// numbers as `f32` exactly as the paper's 4-byte accounting assumes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + 20 * self.distinct_terms());
        buf.put_u64(self.n_docs);
        buf.put_u64(self.collection_bytes);
        buf.put_u32(self.stats.len() as u32);
        buf.put_u32(self.distinct_terms() as u32);
        for (term, s) in self.iter() {
            buf.put_u32(term.0);
            buf.put_f32(s.p as f32);
            buf.put_f32(s.mean as f32);
            buf.put_f32(s.std_dev as f32);
            buf.put_f32(s.max as f32);
        }
        buf.freeze()
    }

    /// Deserializes the [`Representative::to_bytes`] format.
    ///
    /// Returns `None` on a truncated or malformed buffer.
    pub fn from_bytes(mut buf: impl Buf) -> Option<Self> {
        if buf.remaining() < 24 {
            return None;
        }
        let n_docs = buf.get_u64();
        let collection_bytes = buf.get_u64();
        let rows = buf.get_u32() as usize;
        let present = buf.get_u32() as usize;
        if buf.remaining() < present * 20 {
            return None;
        }
        let mut stats = vec![
            TermStats {
                p: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                max: 0.0,
            };
            rows
        ];
        for _ in 0..present {
            let term = buf.get_u32() as usize;
            if term >= rows {
                return None;
            }
            stats[term] = TermStats {
                p: buf.get_f32() as f64,
                mean: buf.get_f32() as f64,
                std_dev: buf.get_f32() as f64,
                max: buf.get_f32() as f64,
            };
        }
        Some(Representative {
            n_docs,
            stats,
            collection_bytes,
        })
    }
}

/// One row of the §3.2 scalability table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeReport {
    /// Collection size in 2 KB pages.
    pub collection_pages: u64,
    /// Number of distinct terms `k`.
    pub distinct_terms: u64,
    /// Full (20 bytes/term) representative size in pages.
    pub representative_pages: u64,
    /// One-byte quantized (8 bytes/term) representative size in pages.
    pub quantized_pages: u64,
}

impl SizeReport {
    /// Representative size as a percentage of the collection size.
    pub fn percent(&self) -> f64 {
        if self.collection_pages == 0 {
            0.0
        } else {
            100.0 * self.representative_pages as f64 / self.collection_pages as f64
        }
    }

    /// Quantized representative size as a percentage of the collection.
    pub fn quantized_percent(&self) -> f64 {
        if self.collection_pages == 0 {
            0.0
        } else {
            100.0 * self.quantized_pages as f64 / self.collection_pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn paper_like_collection() -> Collection {
        // Example 3.1's five documents over three terms t1 t2 t3 with
        // term frequencies mirroring (3,0,0),(1,1,0),(0,0,2),(2,0,2),(0,0,0).
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d1", "t1 t1 t1");
        b.add_document("d2", "t1 t2");
        b.add_document("d3", "t3 t3");
        b.add_document("d4", "t1 t1 t3 t3");
        b.add_document("d5", "");
        b.build()
    }

    #[test]
    fn probabilities_match_document_frequencies() {
        let c = paper_like_collection();
        let r = Representative::build(&c);
        let t1 = c.vocab().get("t1").unwrap();
        let t2 = c.vocab().get("t2").unwrap();
        let t3 = c.vocab().get("t3").unwrap();
        // Example 3.1: p1 = 0.6, p2 = 0.2, p3 = 0.4.
        assert!((r.get(t1).unwrap().p - 0.6).abs() < 1e-12);
        assert!((r.get(t2).unwrap().p - 0.2).abs() < 1e-12);
        assert!((r.get(t3).unwrap().p - 0.4).abs() < 1e-12);
        assert_eq!(r.n_docs(), 5);
    }

    #[test]
    fn means_are_over_containing_docs_only() {
        let c = paper_like_collection();
        let r = Representative::build(&c);
        let t1 = c.vocab().get("t1").unwrap();
        let s = r.get(t1).unwrap();
        // Normalized weights of t1: d1: 3/3=1, d2: 1/sqrt(2), d4: 2/sqrt(8).
        let w = [1.0, 1.0 / 2f64.sqrt(), 2.0 / 8f64.sqrt()];
        let mean = w.iter().sum::<f64>() / 3.0;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.max - 1.0).abs() < 1e-12);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn absent_term_is_none() {
        let c = paper_like_collection();
        let r = Representative::build(&c);
        assert!(r.get(TermId(999)).is_none());
    }

    #[test]
    fn size_accounting() {
        let c = paper_like_collection();
        let r = Representative::build(&c);
        assert_eq!(r.distinct_terms(), 3);
        assert_eq!(r.size_bytes_quadruplet(), 60);
        assert_eq!(r.size_bytes_triplet(), 48);
        assert_eq!(r.size_bytes_quantized(), 24);
        let rep = r.size_report();
        assert_eq!(rep.distinct_terms, 3);
        assert!(rep.percent() >= 0.0);
    }

    #[test]
    fn paper_table_ratio_wsj() {
        // The §3.2 table: WSJ has 156,298 distinct terms and 40,605 pages;
        // 20 * k bytes = 1,563 pages = 3.85 %.
        let k: u64 = 156_298;
        let pages = (20 * k).div_ceil(PAGE_BYTES);
        assert_eq!(pages, 1527); // ceil(3125960 / 2048)
                                 // The paper's 1563 pages uses 2000-byte pages; with 2 KB pages the
                                 // ratio is still ~3.76 %.
        let pct = 100.0 * pages as f64 / 40_605.0;
        assert!((pct - 3.76).abs() < 0.05, "pct={pct}");
    }

    #[test]
    fn bytes_round_trip() {
        let c = paper_like_collection();
        let r = Representative::build(&c);
        let bytes = r.to_bytes();
        let r2 = Representative::from_bytes(bytes).expect("valid buffer");
        assert_eq!(r2.n_docs(), r.n_docs());
        assert_eq!(r2.distinct_terms(), r.distinct_terms());
        for (term, s) in r.iter() {
            let s2 = r2.get(term).expect("term present after round trip");
            // f32 precision.
            assert!((s.p - s2.p).abs() < 1e-6);
            assert!((s.mean - s2.mean).abs() < 1e-6);
            assert!((s.std_dev - s2.std_dev).abs() < 1e-6);
            assert!((s.max - s2.max).abs() < 1e-6);
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Representative::from_bytes(&b"short"[..]).is_none());
        let c = paper_like_collection();
        let bytes = Representative::build(&c).to_bytes();
        let truncated = &bytes[..bytes.len() - 4];
        assert!(Representative::from_bytes(truncated).is_none());
    }

    #[test]
    fn empty_collection() {
        let b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        let r = Representative::build(&b.build());
        assert_eq!(r.n_docs(), 0);
        assert_eq!(r.distinct_terms(), 0);
        assert_eq!(r.size_bytes_quadruplet(), 0);
    }
}
