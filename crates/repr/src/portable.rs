//! Portable, mergeable database summaries — the metadata of a broker
//! *hierarchy*.
//!
//! The paper notes its two-level architecture "can be generalized to more
//! than two levels" (and gGlOSS explicitly targets "broker hierarchies").
//! A higher-level broker then needs a representative of an entire *group*
//! of databases. Term ids are per-collection, so group summaries are
//! keyed by term **string** and carry full weight moments per term —
//! which makes them exactly mergeable: merging the portable summaries of
//! two databases yields the summary of their union (for the cosine
//! schemes, whose normalized weights are per-document).
//!
//! A frozen summary exposes the familiar `(Representative, Vocabulary)`
//! pair so the usual estimators run against it unchanged.

use crate::representative::{Representative, TermStats};
use seu_engine::{Collection, Query};
use seu_stats::Moments;
use seu_text::Vocabulary;
use std::collections::BTreeMap;

/// A string-keyed, mergeable database summary.
#[derive(Debug, Clone, Default)]
pub struct PortableRepresentative {
    n_docs: u64,
    collection_bytes: u64,
    /// Per-term weight moments, keyed by term string (BTreeMap for
    /// deterministic freeze order).
    terms: BTreeMap<String, Moments>,
}

impl PortableRepresentative {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarizes one collection.
    pub fn build(collection: &Collection) -> Self {
        let mut terms: BTreeMap<String, Moments> = BTreeMap::new();
        for doc in collection.docs() {
            for &(term, weight) in &doc.terms {
                terms
                    .entry(collection.vocab().term(term).to_string())
                    .or_default()
                    .push(weight);
            }
        }
        PortableRepresentative {
            n_docs: collection.len() as u64,
            collection_bytes: collection.raw_bytes(),
            terms,
        }
    }

    /// Merges another summary in: the result summarizes the union of the
    /// two document sets.
    pub fn merge(&mut self, other: &PortableRepresentative) {
        self.n_docs += other.n_docs;
        self.collection_bytes += other.collection_bytes;
        for (term, m) in &other.terms {
            self.terms.entry(term.clone()).or_default().merge(m);
        }
    }

    /// Number of summarized documents.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Freezes into an id-aligned representative + vocabulary, ready for
    /// the estimators.
    pub fn freeze(&self) -> FrozenSummary {
        let mut vocab = Vocabulary::new();
        let mut stats = Vec::with_capacity(self.terms.len());
        for (term, m) in &self.terms {
            vocab.intern(term);
            stats.push(TermStats {
                p: if self.n_docs == 0 {
                    0.0
                } else {
                    m.count() as f64 / self.n_docs as f64
                },
                mean: m.mean(),
                std_dev: m.std_dev(),
                max: m.max(),
            });
        }
        FrozenSummary {
            repr: Representative::from_parts(self.n_docs, stats, self.collection_bytes),
            vocab,
        }
    }
}

/// A frozen [`PortableRepresentative`]: the estimator-facing view.
#[derive(Debug, Clone)]
pub struct FrozenSummary {
    /// The id-aligned representative.
    pub repr: Representative,
    /// The vocabulary its ids index.
    pub vocab: Vocabulary,
}

impl FrozenSummary {
    /// Magic of the compact (f32 statistics) encoding — "SEUS".
    const MAGIC_F32: u32 = 0x5345_5553;
    /// Magic of the exact (f64 statistics) encoding — "SEUT". Version 2
    /// of the same record layout: only the statistic width differs.
    const MAGIC_F64: u32 = 0x5345_5554;

    /// Serializes the summary to a self-contained, string-keyed binary
    /// buffer — unlike [`Representative::to_bytes`], this carries the
    /// term strings, so the receiver needs no shared vocabulary.
    /// Statistics are rounded to f32: half the size, and plenty for
    /// file-based shipping. Use [`FrozenSummary::to_bytes_exact`] when
    /// the receiver must reproduce estimates bit-for-bit.
    pub fn to_bytes(&self) -> bytes::Bytes {
        self.encode(false)
    }

    /// Serializes like [`FrozenSummary::to_bytes`] but keeps every
    /// statistic at full f64 precision, so a broker that receives the
    /// summary over the network computes estimates **byte-identical** to
    /// one that built the representative locally. [`FrozenSummary::from_bytes`]
    /// reads both encodings, telling them apart by magic.
    pub fn to_bytes_exact(&self) -> bytes::Bytes {
        self.encode(true)
    }

    fn encode(&self, exact: bool) -> bytes::Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        buf.put_u32(if exact {
            Self::MAGIC_F64
        } else {
            Self::MAGIC_F32
        });
        buf.put_u64(self.repr.n_docs());
        buf.put_u64(self.repr.collection_bytes());
        buf.put_u32(self.repr.distinct_terms() as u32);
        for (term, s) in self.repr.iter() {
            let name = self.vocab.term(term).as_bytes();
            buf.put_u16(name.len() as u16);
            buf.put_slice(name);
            if exact {
                buf.put_f64(s.p);
                buf.put_f64(s.mean);
                buf.put_f64(s.std_dev);
                buf.put_f64(s.max);
            } else {
                buf.put_f32(s.p as f32);
                buf.put_f32(s.mean as f32);
                buf.put_f32(s.std_dev as f32);
                buf.put_f32(s.max as f32);
            }
        }
        buf.freeze()
    }

    /// Smallest possible encoding of one term record: a 2-byte name
    /// length (the name itself may be empty) plus four statistics of
    /// `stat_bytes` each. Bounds the up-front allocation `from_bytes`
    /// will make for a claimed term count.
    const fn min_term_record_bytes(stat_bytes: usize) -> usize {
        2 + 4 * stat_bytes
    }

    /// Deserializes [`FrozenSummary::to_bytes`] or
    /// [`FrozenSummary::to_bytes_exact`]; `None` on malformed input.
    pub fn from_bytes(mut buf: impl bytes::Buf) -> Option<Self> {
        use crate::representative::TermStats;
        if buf.remaining() < 4 + 8 + 8 + 4 {
            return None;
        }
        let stat_bytes = match buf.get_u32() {
            Self::MAGIC_F32 => 4,
            Self::MAGIC_F64 => 8,
            _ => return None,
        };
        let n_docs = buf.get_u64();
        let collection_bytes = buf.get_u64();
        let n_terms = buf.get_u32() as usize;
        let mut vocab = Vocabulary::new();
        // The claimed count is untrusted: a 16-byte header can announce
        // u32::MAX terms. Cap the pre-allocation by what the remaining
        // bytes could possibly encode; the parse loop still rejects the
        // buffer if it runs short.
        let mut stats = Vec::with_capacity(
            n_terms.min(buf.remaining() / Self::min_term_record_bytes(stat_bytes)),
        );
        for _ in 0..n_terms {
            if buf.remaining() < 2 {
                return None;
            }
            let len = buf.get_u16() as usize;
            if buf.remaining() < len + 4 * stat_bytes {
                return None;
            }
            let mut name = vec![0u8; len];
            buf.copy_to_slice(&mut name);
            let name = String::from_utf8(name).ok()?;
            vocab.intern(&name);
            let mut stat = || {
                if stat_bytes == 8 {
                    buf.get_f64()
                } else {
                    buf.get_f32() as f64
                }
            };
            stats.push(TermStats {
                p: stat(),
                mean: stat(),
                std_dev: stat(),
                max: stat(),
            });
        }
        Some(FrozenSummary {
            repr: Representative::from_parts(n_docs, stats, collection_bytes),
            vocab,
        })
    }

    /// Builds a cosine-normalized query vector over the summary's
    /// vocabulary from analyzed tokens (unknown tokens dropped).
    pub fn query_from_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Query {
        use std::collections::HashMap;
        let mut tf: HashMap<seu_text::TermId, u32> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.vocab.get(t.as_ref()) {
                *tf.entry(id).or_insert(0) += 1;
            }
        }
        let mut weights: Vec<(seu_text::TermId, f64)> =
            tf.into_iter().map(|(t, f)| (t, f as f64)).collect();
        weights.sort_by_key(|&(t, _)| t);
        let norm = weights.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in weights.iter_mut() {
                *w /= norm;
            }
        }
        Query::new(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection(docs: &[&str]) -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, d) in docs.iter().enumerate() {
            b.add_document(&format!("d{i}"), d);
        }
        b.build()
    }

    #[test]
    fn merge_equals_union_build() {
        let docs_a = ["alpha beta", "alpha gamma gamma"];
        let docs_b = ["beta beta delta", "gamma"];
        let a = PortableRepresentative::build(&collection(&docs_a));
        let b = PortableRepresentative::build(&collection(&docs_b));
        let mut merged = a.clone();
        merged.merge(&b);

        let union_docs: Vec<&str> = docs_a.iter().chain(docs_b.iter()).copied().collect();
        let union = PortableRepresentative::build(&collection(&union_docs));

        assert_eq!(merged.n_docs(), union.n_docs());
        assert_eq!(merged.distinct_terms(), union.distinct_terms());
        let fm = merged.freeze();
        let fu = union.freeze();
        for (term, s) in fu.repr.iter() {
            let name = fu.vocab.term(term);
            let id = fm.vocab.get(name).expect("term in merged");
            let s2 = fm.repr.get(id).expect("stats in merged");
            assert!((s.p - s2.p).abs() < 1e-12, "{name}");
            assert!((s.mean - s2.mean).abs() < 1e-10, "{name}");
            assert!((s.std_dev - s2.std_dev).abs() < 1e-9, "{name}");
            assert!((s.max - s2.max).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn freeze_matches_direct_representative() {
        let docs = ["alpha beta", "alpha gamma gamma", "beta"];
        let c = collection(&docs);
        let direct = Representative::build(&c);
        let frozen = PortableRepresentative::build(&c).freeze();
        assert_eq!(frozen.repr.n_docs(), direct.n_docs());
        assert_eq!(frozen.repr.distinct_terms(), direct.distinct_terms());
        for (term, s) in direct.iter() {
            let name = c.vocab().term(term);
            let id = frozen.vocab.get(name).unwrap();
            let s2 = frozen.repr.get(id).unwrap();
            assert!((s.mean - s2.mean).abs() < 1e-12);
            assert!((s.max - s2.max).abs() < 1e-12);
        }
    }

    #[test]
    fn frozen_query_normalization() {
        let c = collection(&["alpha beta gamma"]);
        let f = PortableRepresentative::build(&c).freeze();
        let q = f.query_from_tokens(&["alpha", "beta", "unknown"]);
        assert_eq!(q.len(), 2);
        let sq: f64 = q.terms().iter().map(|&(_, w)| w * w).sum();
        assert!((sq - 1.0).abs() < 1e-12);
        // Duplicate tokens weigh more.
        let q2 = f.query_from_tokens(&["alpha", "alpha", "beta"]);
        assert!(q2.terms()[0].1 > q2.terms()[1].1 || q2.terms()[1].1 > q2.terms()[0].1);
    }

    #[test]
    fn frozen_wire_format_round_trips() {
        let c = collection(&["alpha beta", "alpha gamma gamma", "beta"]);
        let f = PortableRepresentative::build(&c).freeze();
        let f2 = FrozenSummary::from_bytes(f.to_bytes()).expect("valid buffer");
        assert_eq!(f2.repr.n_docs(), f.repr.n_docs());
        assert_eq!(f2.repr.distinct_terms(), f.repr.distinct_terms());
        for (term, s) in f.repr.iter() {
            let name = f.vocab.term(term);
            let id2 = f2.vocab.get(name).expect("term survives");
            let s2 = f2.repr.get(id2).expect("stats survive");
            assert!((s.p - s2.p).abs() < 1e-6);
            assert!((s.max - s2.max).abs() < 1e-6);
        }
        // Garbage is rejected, not panicked on.
        assert!(FrozenSummary::from_bytes(&b"junk"[..]).is_none());
        let bytes = f.to_bytes();
        assert!(FrozenSummary::from_bytes(&bytes[..bytes.len() - 2]).is_none());
    }

    #[test]
    fn exact_wire_format_round_trips_bit_for_bit() {
        let c = collection(&["alpha beta", "alpha gamma gamma", "beta"]);
        let f = PortableRepresentative::build(&c).freeze();
        let exact = FrozenSummary::from_bytes(f.to_bytes_exact()).expect("valid buffer");
        assert_eq!(exact.repr.n_docs(), f.repr.n_docs());
        for (term, s) in f.repr.iter() {
            let name = f.vocab.term(term);
            let id2 = exact.vocab.get(name).expect("term survives");
            let s2 = exact.repr.get(id2).expect("stats survive");
            // Full f64 precision: bit-for-bit, not just approximately.
            assert_eq!(s.p.to_bits(), s2.p.to_bits(), "{name}");
            assert_eq!(s.mean.to_bits(), s2.mean.to_bits(), "{name}");
            assert_eq!(s.std_dev.to_bits(), s2.std_dev.to_bits(), "{name}");
            assert_eq!(s.max.to_bits(), s2.max.to_bits(), "{name}");
        }
        // Truncation is rejected for the exact encoding too.
        let bytes = f.to_bytes_exact();
        assert!(FrozenSummary::from_bytes(&bytes[..bytes.len() - 3]).is_none());
    }

    #[test]
    fn from_bytes_caps_allocation_for_malicious_term_counts() {
        use bytes::BufMut;
        // A 24-byte buffer claiming u32::MAX terms: before the capacity
        // cap this demanded a multi-GB Vec before a single record was
        // validated. It must be rejected cheaply instead.
        let mut buf = bytes::BytesMut::new();
        buf.put_u32(0x5345_5553);
        buf.put_u64(3); // n_docs
        buf.put_u64(100); // collection_bytes
        buf.put_u32(u32::MAX); // claimed term count, no records follow
        assert!(FrozenSummary::from_bytes(buf.freeze()).is_none());

        // Same claim with one truncated record behind it.
        let mut buf = bytes::BytesMut::new();
        buf.put_u32(0x5345_5553);
        buf.put_u64(3);
        buf.put_u64(100);
        buf.put_u32(u32::MAX);
        buf.put_u16(5); // name length, but no name bytes
        assert!(FrozenSummary::from_bytes(buf.freeze()).is_none());
    }

    #[test]
    fn empty_summary() {
        let p = PortableRepresentative::new();
        assert_eq!(p.n_docs(), 0);
        let f = p.freeze();
        assert_eq!(f.repr.distinct_terms(), 0);
        assert!(f.query_from_tokens(&["x"]).is_empty());
    }
}
