//! The on-disk blob layer: append-only segment files addressed by
//! collection fingerprint, plus an atomically swapped manifest.
//!
//! Layout under the store root:
//!
//! ```text
//! root/
//!   MANIFEST          versioned registry cut + blob locations + CRC
//!   seg-000000.dat    append-only segments: header, then records
//!   seg-000001.dat    (rolled when a segment passes SEGMENT_CAP)
//! ```
//!
//! A segment record is `key (24 bytes) | payload len (u32) |
//! crc32(payload) (u32) | payload`. Writes are cheap appends with no
//! fsync; durability happens at [`LocalStore::commit`], which syncs the
//! active segment, writes `MANIFEST.tmp` (with a CRC trailer), syncs
//! it, renames it over `MANIFEST`, and syncs the directory — so a crash
//! either keeps the old manifest or installs the new one, never a torn
//! mix. Blobs appended after the last committed manifest are orphan
//! tails: invisible after reopen, harmlessly skipped because every
//! committed location is explicit.

use crate::codec::{self, Reader};
use crate::{store_metrics, BlobStore, EntryKind, Manifest, ManifestEntry, StoreError};
use bytes::BufMut;
use parking_lot::Mutex;
use seu_engine::Fingerprint;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix of a segment file: `"SEUG"`.
pub const SEGMENT_MAGIC: u32 = 0x5345_5547;
/// Magic prefix of the manifest file: `"SEUM"`.
pub const MANIFEST_MAGIC: u32 = 0x5345_554D;
/// On-disk format version shared by segments and the manifest.
pub const STORE_VERSION: u16 = 1;
/// Soft cap on a segment file; the next put after passing it rolls to a
/// fresh segment.
pub const SEGMENT_CAP: u64 = 64 << 20;

/// Bytes of a segment file header: magic + version.
const SEGMENT_HEADER_BYTES: u64 = 6;
/// Bytes of a segment record header: 24-byte key + len + crc.
const RECORD_HEADER_BYTES: u64 = 24 + 4 + 4;
/// Smallest possible serialized manifest entry, the divisor for the
/// entry-count allocation cap (empty name + fixed fields + location).
const MIN_ENTRY_BYTES: usize = 2 + 8 + 8 + 24 + 1 + 2 + 9 + 8 + 8 + 16;

/// Where a committed blob lives.
#[derive(Debug, Clone, Copy)]
struct Location {
    segment: u32,
    offset: u64,
    len: u32,
}

struct LocalInner {
    index: HashMap<Fingerprint, Location>,
    manifest: Manifest,
    active_id: u32,
    active_len: u64,
    active: Option<File>,
    cold_bytes: u64,
}

/// The bottom store tier: fingerprint-addressed segment files under a
/// root directory, with an fsync'd atomically swapped manifest.
pub struct LocalStore {
    root: PathBuf,
    inner: Mutex<LocalInner>,
}

impl std::fmt::Debug for LocalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalStore")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

fn segment_path(root: &Path, id: u32) -> PathBuf {
    root.join(format!("seg-{id:06}.dat"))
}

fn manifest_path(root: &Path) -> PathBuf {
    root.join("MANIFEST")
}

fn put_fingerprint(buf: &mut Vec<u8>, fp: Fingerprint) {
    buf.put_u64(fp.n_docs);
    buf.put_u64(fp.raw_bytes);
    buf.put_u64(fp.hash);
}

fn get_fingerprint(r: &mut Reader<'_>, what: &str) -> Result<Fingerprint, StoreError> {
    Ok(Fingerprint {
        n_docs: r.u64(what)?,
        raw_bytes: r.u64(what)?,
        hash: r.u64(what)?,
    })
}

fn encode_manifest(manifest: &Manifest, locations: &[Location]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + manifest.entries.len() * 96);
    buf.put_u32(MANIFEST_MAGIC);
    buf.put_u16(STORE_VERSION);
    buf.put_u64(manifest.epoch);
    buf.put_u32(manifest.shard_epochs.len() as u32);
    for &e in &manifest.shard_epochs {
        buf.put_u64(e);
    }
    buf.put_u64(manifest.next_seq);
    buf.put_u32(manifest.entries.len() as u32);
    for (entry, loc) in manifest.entries.iter().zip(locations) {
        codec::put_str(&mut buf, &entry.name);
        buf.put_u64(entry.seq);
        buf.put_u64(entry.epoch);
        put_fingerprint(&mut buf, entry.fingerprint);
        match &entry.kind {
            EntryKind::Local => buf.put_u8(0),
            EntryKind::Remote { endpoint } => {
                buf.put_u8(1);
                codec::put_str(&mut buf, endpoint);
            }
            EntryKind::Shipped => buf.put_u8(2),
        }
        buf.put_u8(u8::from(entry.analyzer.remove_stopwords));
        buf.put_u8(u8::from(entry.analyzer.stem));
        let (tag, param) = codec::scheme_tag(entry.scheme);
        buf.put_u8(tag);
        buf.put_f64(param);
        buf.put_u64(entry.repr_terms);
        buf.put_u64(entry.repr_bytes);
        buf.put_u32(loc.segment);
        buf.put_u64(loc.offset);
        buf.put_u32(loc.len);
    }
    let crc = crate::crc32(&buf);
    buf.put_u32(crc);
    buf
}

fn decode_manifest(bytes: &[u8]) -> Result<(Manifest, Vec<Location>), StoreError> {
    if bytes.len() < 4 {
        return Err(StoreError::corrupt("manifest shorter than its CRC trailer"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_be_bytes(trailer.try_into().unwrap());
    let actual = crate::crc32(body);
    if stored_crc != actual {
        return Err(StoreError::corrupt(format!(
            "manifest CRC mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = Reader::new(body);
    let magic = r.u32("manifest magic")?;
    if magic != MANIFEST_MAGIC {
        return Err(StoreError::corrupt(format!(
            "bad manifest magic {magic:#x}"
        )));
    }
    let version = r.u16("manifest version")?;
    if version != STORE_VERSION {
        return Err(StoreError::corrupt(format!(
            "unsupported manifest version {version}"
        )));
    }
    let epoch = r.u64("manifest epoch")?;
    let n_shards = r.u32("shard epoch count")? as usize;
    let mut shard_epochs = Vec::with_capacity(n_shards.min(r.remaining() / 8));
    for _ in 0..n_shards {
        shard_epochs.push(r.u64("shard epoch")?);
    }
    let next_seq = r.u64("next sequence number")?;
    let n_entries = r.u32("entry count")? as usize;
    let cap = n_entries.min(r.remaining() / MIN_ENTRY_BYTES);
    let mut entries = Vec::with_capacity(cap);
    let mut locations = Vec::with_capacity(cap);
    for _ in 0..n_entries {
        let name = r.str("entry name")?;
        let seq = r.u64("entry seq")?;
        let entry_epoch = r.u64("entry epoch")?;
        let fingerprint = get_fingerprint(&mut r, "entry fingerprint")?;
        let kind = match r.u8("entry kind")? {
            0 => EntryKind::Local,
            1 => EntryKind::Remote {
                endpoint: r.str("entry endpoint")?,
            },
            2 => EntryKind::Shipped,
            other => {
                return Err(StoreError::corrupt(format!(
                    "unknown entry kind tag {other}"
                )))
            }
        };
        let analyzer = seu_text::AnalyzerConfig {
            remove_stopwords: codec::get_bool(&mut r, "entry stopword flag")?,
            stem: codec::get_bool(&mut r, "entry stem flag")?,
        };
        let tag = r.u8("entry scheme tag")?;
        let param = r.f64("entry scheme param")?;
        let scheme = codec::scheme_from_tag(tag, param)
            .ok_or_else(|| StoreError::corrupt(format!("unknown scheme tag {tag}")))?;
        let repr_terms = r.u64("entry repr terms")?;
        let repr_bytes = r.u64("entry repr bytes")?;
        let location = Location {
            segment: r.u32("blob segment")?,
            offset: r.u64("blob offset")?,
            len: r.u32("blob length")?,
        };
        entries.push(ManifestEntry {
            name,
            seq,
            epoch: entry_epoch,
            fingerprint,
            kind,
            analyzer,
            scheme,
            repr_terms,
            repr_bytes,
        });
        locations.push(location);
    }
    if r.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} trailing bytes after manifest entries",
            r.remaining()
        )));
    }
    Ok((
        Manifest {
            epoch,
            shard_epochs,
            next_seq,
            entries,
        },
        locations,
    ))
}

impl LocalStore {
    /// Opens (or initializes) a store rooted at `root`, loading the
    /// committed manifest and blob index if one exists.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| StoreError::io(&root, e))?;
        let mut inner = LocalInner {
            index: HashMap::new(),
            manifest: Manifest::default(),
            active_id: 0,
            active_len: 0,
            active: None,
            cold_bytes: 0,
        };
        let mpath = manifest_path(&root);
        if mpath.exists() {
            let bytes = fs::read(&mpath).map_err(|e| StoreError::io(&mpath, e))?;
            let (manifest, locations) = decode_manifest(&bytes)?;
            for (entry, loc) in manifest.entries.iter().zip(&locations) {
                inner.active_id = inner.active_id.max(loc.segment);
                inner.cold_bytes += u64::from(loc.len) + RECORD_HEADER_BYTES;
                inner.index.insert(entry.fingerprint, *loc);
            }
            inner.manifest = manifest;
            let active_path = segment_path(&root, inner.active_id);
            inner.active_len = match fs::metadata(&active_path) {
                Ok(m) => m.len(),
                Err(_) => 0,
            };
        }
        store_metrics().cold_bytes.set(inner.cold_bytes as f64);
        Ok(LocalStore {
            root,
            inner: Mutex::new(inner),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn open_active(&self, inner: &mut LocalInner) -> Result<(), StoreError> {
        if inner.active.is_some() {
            return Ok(());
        }
        let path = segment_path(&self.root, inner.active_id);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        let len = file.metadata().map_err(|e| StoreError::io(&path, e))?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
            header.put_u32(SEGMENT_MAGIC);
            header.put_u16(STORE_VERSION);
            file.write_all(&header)
                .map_err(|e| StoreError::io(&path, e))?;
            inner.active_len = SEGMENT_HEADER_BYTES;
        } else {
            inner.active_len = len;
        }
        inner.active = Some(file);
        Ok(())
    }
}

impl BlobStore for LocalStore {
    fn get_bytes(&self, key: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        let loc = {
            let inner = self.inner.lock();
            match inner.index.get(&key) {
                Some(loc) => *loc,
                None => return Ok(None),
            }
        };
        let path = segment_path(&self.root, loc.segment);
        let mut file = File::open(&path).map_err(|e| StoreError::io(&path, e))?;
        file.seek(SeekFrom::Start(loc.offset))
            .map_err(|e| StoreError::io(&path, e))?;
        let mut header = [0u8; RECORD_HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|e| StoreError::io(&path, e))?;
        let mut r = Reader::new(&header);
        let stored_key = get_fingerprint(&mut r, "record key")?;
        let len = r.u32("record length")?;
        let crc = r.u32("record checksum")?;
        if stored_key != key || len != loc.len {
            return Err(StoreError::corrupt(format!(
                "segment record at {}:{} does not match the indexed key",
                loc.segment, loc.offset
            )));
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)
            .map_err(|e| StoreError::io(&path, e))?;
        let actual = crate::crc32(&payload);
        if actual != crc {
            return Err(StoreError::corrupt(format!(
                "segment record checksum mismatch at {}:{}: stored {crc:#010x}, computed {actual:#010x}",
                loc.segment, loc.offset
            )));
        }
        Ok(Some(payload))
    }

    fn put_bytes(&self, key: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        self.open_active(&mut inner)?;
        if inner.active_len >= SEGMENT_CAP {
            inner.active = None;
            inner.active_id += 1;
            self.open_active(&mut inner)?;
        }
        let offset = inner.active_len;
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES as usize + bytes.len());
        put_fingerprint(&mut record, key);
        record.put_u32(bytes.len() as u32);
        record.put_u32(crate::crc32(bytes));
        record.put_slice(bytes);
        let segment = inner.active_id;
        let path = segment_path(&self.root, segment);
        inner
            .active
            .as_mut()
            .expect("active segment was just opened")
            .write_all(&record)
            .map_err(|e| StoreError::io(&path, e))?;
        inner.active_len += record.len() as u64;
        inner.cold_bytes += record.len() as u64;
        // Last write wins: the index moves to the fresh record and any
        // previous record for the key becomes an unreferenced tail.
        inner.index.insert(
            key,
            Location {
                segment,
                offset,
                len: bytes.len() as u32,
            },
        );
        store_metrics().cold_bytes.set(inner.cold_bytes as f64);
        Ok(())
    }

    fn contains(&self, key: Fingerprint) -> bool {
        self.inner.lock().index.contains_key(&key)
    }

    fn manifest(&self) -> Manifest {
        self.inner.lock().manifest.clone()
    }

    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let mut locations = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            let loc = inner.index.get(&entry.fingerprint).ok_or_else(|| {
                StoreError::missing(format!(
                    "manifest entry {:?} references a blob not in the store; \
                     put its representative before committing",
                    entry.name
                ))
            })?;
            locations.push(*loc);
        }
        let active_id = inner.active_id;
        if let Some(file) = inner.active.as_mut() {
            let path = segment_path(&self.root, active_id);
            file.sync_all().map_err(|e| StoreError::io(&path, e))?;
        }
        let bytes = encode_manifest(manifest, &locations);
        let tmp = self.root.join("MANIFEST.tmp");
        let final_path = manifest_path(&self.root);
        {
            let mut file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
            file.write_all(&bytes)
                .map_err(|e| StoreError::io(&tmp, e))?;
            file.sync_all().map_err(|e| StoreError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &final_path).map_err(|e| StoreError::io(&final_path, e))?;
        if let Ok(dir) = File::open(&self.root) {
            // Directory fsync makes the rename itself durable; best
            // effort on filesystems that refuse to sync directories.
            let _ = dir.sync_all();
        }
        inner.manifest = manifest.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreErrorKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "seu-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp(hash: u64) -> Fingerprint {
        Fingerprint {
            n_docs: 2,
            raw_bytes: 100,
            hash,
        }
    }

    fn entry(name: &str, key: Fingerprint) -> ManifestEntry {
        ManifestEntry {
            name: name.into(),
            seq: 1,
            epoch: 1,
            fingerprint: key,
            kind: EntryKind::Local,
            analyzer: seu_text::AnalyzerConfig::default(),
            scheme: seu_engine::WeightingScheme::CosineTf,
            repr_terms: 3,
            repr_bytes: 48,
        }
    }

    #[test]
    fn put_get_round_trip_and_last_write_wins() {
        let root = tmp_root("roundtrip");
        let store = LocalStore::open(&root).unwrap();
        let key = fp(7);
        assert!(!store.contains(key));
        assert_eq!(store.get_bytes(key).unwrap(), None);
        store.put_bytes(key, b"hello segment").unwrap();
        assert!(store.contains(key));
        assert_eq!(
            store.get_bytes(key).unwrap().as_deref(),
            Some(&b"hello segment"[..])
        );
        // Last write wins: a replacement payload supersedes the first.
        store.put_bytes(key, b"replacement payload").unwrap();
        assert_eq!(
            store.get_bytes(key).unwrap().as_deref(),
            Some(&b"replacement payload"[..])
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_then_reopen_restores_manifest_and_blobs() {
        let root = tmp_root("reopen");
        let key_a = fp(1);
        let key_b = fp(2);
        {
            let store = LocalStore::open(&root).unwrap();
            store.put_bytes(key_a, b"alpha payload").unwrap();
            store.put_bytes(key_b, b"beta payload").unwrap();
            let manifest = Manifest {
                epoch: 9,
                shard_epochs: vec![4, 5],
                next_seq: 3,
                entries: vec![entry("a", key_a), entry("b", key_b)],
            };
            store.commit(&manifest).unwrap();
        }
        let store = LocalStore::open(&root).unwrap();
        let manifest = store.manifest();
        assert_eq!(manifest.epoch, 9);
        assert_eq!(manifest.shard_epochs, vec![4, 5]);
        assert_eq!(manifest.next_seq, 3);
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entries[0].name, "a");
        assert_eq!(
            store.get_bytes(key_a).unwrap().as_deref(),
            Some(&b"alpha payload"[..])
        );
        assert_eq!(
            store.get_bytes(key_b).unwrap().as_deref(),
            Some(&b"beta payload"[..])
        );
        assert!(!root.join("MANIFEST.tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn uncommitted_blobs_are_orphaned_on_reopen_but_appends_still_work() {
        let root = tmp_root("orphan");
        let committed = fp(1);
        let orphan = fp(2);
        {
            let store = LocalStore::open(&root).unwrap();
            store.put_bytes(committed, b"kept").unwrap();
            let manifest = Manifest {
                epoch: 1,
                shard_epochs: vec![1],
                next_seq: 2,
                entries: vec![entry("kept", committed)],
            };
            store.commit(&manifest).unwrap();
            store.put_bytes(orphan, b"tail").unwrap();
        }
        let store = LocalStore::open(&root).unwrap();
        assert!(store.contains(committed));
        assert!(!store.contains(orphan), "orphan tail must be invisible");
        // New appends land after the orphan tail without clobbering it.
        let fresh = fp(3);
        store.put_bytes(fresh, b"fresh payload").unwrap();
        assert_eq!(
            store.get_bytes(fresh).unwrap().as_deref(),
            Some(&b"fresh payload"[..])
        );
        assert_eq!(
            store.get_bytes(committed).unwrap().as_deref(),
            Some(&b"kept"[..])
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_payload_byte_is_detected() {
        let root = tmp_root("corrupt");
        let key = fp(11);
        {
            let store = LocalStore::open(&root).unwrap();
            store
                .put_bytes(key, b"precious representative bytes")
                .unwrap();
            let manifest = Manifest {
                epoch: 1,
                shard_epochs: vec![1],
                next_seq: 2,
                entries: vec![entry("x", key)],
            };
            store.commit(&manifest).unwrap();
        }
        // Flip one payload byte on disk (past header + record header).
        let seg = segment_path(&root, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let at = (SEGMENT_HEADER_BYTES + RECORD_HEADER_BYTES) as usize + 3;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let store = LocalStore::open(&root).unwrap();
        let err = store.get_bytes(key).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Corrupt);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_refuses_manifest_entries_without_blobs() {
        let root = tmp_root("missing");
        let store = LocalStore::open(&root).unwrap();
        let manifest = Manifest {
            epoch: 1,
            shard_epochs: vec![1],
            next_seq: 2,
            entries: vec![entry("ghost", fp(99))],
        };
        let err = store.commit(&manifest).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Missing);
        // Failed commit must not clobber the (empty) manifest.
        assert_eq!(store.manifest(), Manifest::default());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_manifest_is_rejected_on_open() {
        let root = tmp_root("badmanifest");
        let key = fp(5);
        {
            let store = LocalStore::open(&root).unwrap();
            store.put_bytes(key, b"payload").unwrap();
            let manifest = Manifest {
                epoch: 1,
                shard_epochs: vec![1],
                next_seq: 2,
                entries: vec![entry("e", key)],
            };
            store.commit(&manifest).unwrap();
        }
        let mpath = manifest_path(&root);
        let mut bytes = fs::read(&mpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&mpath, &bytes).unwrap();
        let err = LocalStore::open(&root).expect_err("corrupt manifest must fail open");
        assert_eq!(err.kind, StoreErrorKind::Corrupt);
        // Truncation is also rejected rather than partially applied.
        let full = fs::read(&mpath).unwrap();
        fs::write(&mpath, &full[..full.len() / 2]).unwrap();
        assert!(LocalStore::open(&root).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_codec_round_trips_all_entry_kinds() {
        let manifest = Manifest {
            epoch: 42,
            shard_epochs: vec![10, 12, 20],
            next_seq: 7,
            entries: vec![
                entry("local", fp(1)),
                ManifestEntry {
                    kind: EntryKind::Remote {
                        endpoint: "127.0.0.1:7070".into(),
                    },
                    scheme: seu_engine::WeightingScheme::PivotedLogTf { slope: 0.25 },
                    ..entry("remote", fp(2))
                },
                ManifestEntry {
                    kind: EntryKind::Shipped,
                    ..entry("shipped", fp(3))
                },
            ],
        };
        let locations = vec![
            Location {
                segment: 0,
                offset: 6,
                len: 10,
            };
            3
        ];
        let bytes = encode_manifest(&manifest, &locations);
        let (decoded, locs) = decode_manifest(&bytes).unwrap();
        assert_eq!(decoded, manifest);
        assert_eq!(locs.len(), 3);
        // A lying entry count cannot overallocate past the real bytes.
        let mut lying = bytes.clone();
        // entry count sits after magic+version+epoch+count+3*u64+next_seq.
        let count_at = 4 + 2 + 8 + 4 + 24 + 8;
        lying[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_manifest(&lying).is_err());
        let _ = decoded;
    }
}
