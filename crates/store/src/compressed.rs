//! The cold-tier codec adapter: turns a byte-oriented [`BlobStore`]
//! into a record-oriented [`ReprStore`] by running the §3.2 quantized
//! codec on the way in and out.
//!
//! `put` is where canonicalization happens: the record is encoded,
//! then the *encoded bytes* are decoded again and that round-trip is
//! returned as the canonical record. Whatever a broker installs while
//! live is therefore bit-identical to what a later restore decodes
//! from disk.

use crate::codec::{self, EngineRecord};
use crate::{store_metrics, BlobStore, Manifest, ReprStore, StoreError};
use seu_engine::Fingerprint;
use std::sync::Arc;

/// Record layer over any blob store: encodes representatives to the
/// quantized cold format on `put` and decodes on `get`.
pub struct CompressedStore<S> {
    inner: S,
}

impl<S: BlobStore> CompressedStore<S> {
    /// Wraps a blob store with the quantized record codec.
    pub fn new(inner: S) -> Self {
        CompressedStore { inner }
    }

    /// The wrapped blob store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlobStore> ReprStore for CompressedStore<S> {
    fn get(&self, key: Fingerprint) -> Result<Option<Arc<EngineRecord>>, StoreError> {
        let m = store_metrics();
        match self.inner.get_bytes(key)? {
            Some(bytes) => {
                let record = codec::decode_record(&bytes)?;
                if record.fingerprint != key {
                    return Err(StoreError::corrupt(format!(
                        "record for engine {:?} carries fingerprint {:?}, expected {key:?}",
                        record.name, record.fingerprint
                    )));
                }
                m.cold_hits.inc();
                Ok(Some(Arc::new(record)))
            }
            None => {
                m.cold_misses.inc();
                Ok(None)
            }
        }
    }

    fn put(&self, record: &EngineRecord) -> Result<Arc<EngineRecord>, StoreError> {
        let bytes = codec::encode_record(record);
        // Byte-identical re-puts are a no-op; anything else (e.g. an
        // engine shipped a replacement representative under the same
        // collection fingerprint) is a last-write-wins overwrite.
        if let Some(existing) = self.inner.get_bytes(record.fingerprint)? {
            if existing == bytes {
                let canonical = codec::decode_record(&existing)?;
                return Ok(Arc::new(canonical));
            }
        }
        let canonical =
            codec::decode_record(&bytes).expect("decoding our own encoding cannot fail");
        self.inner.put_bytes(record.fingerprint, &bytes)?;
        store_metrics().writes.inc();
        Ok(Arc::new(canonical))
    }

    fn contains(&self, key: Fingerprint) -> bool {
        self.inner.contains(key)
    }

    fn manifest(&self) -> Manifest {
        self.inner.manifest()
    }

    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
        self.inner.commit(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreErrorKind;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// In-memory blob store for adapter tests.
    #[derive(Default)]
    struct MemBlobs {
        blobs: Mutex<HashMap<Fingerprint, Vec<u8>>>,
        manifest: Mutex<Manifest>,
    }

    impl BlobStore for MemBlobs {
        fn get_bytes(&self, key: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
            Ok(self.blobs.lock().get(&key).cloned())
        }
        fn put_bytes(&self, key: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
            self.blobs.lock().insert(key, bytes.to_vec());
            Ok(())
        }
        fn contains(&self, key: Fingerprint) -> bool {
            self.blobs.lock().contains_key(&key)
        }
        fn manifest(&self) -> Manifest {
            self.manifest.lock().clone()
        }
        fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
            *self.manifest.lock() = manifest.clone();
            Ok(())
        }
    }

    fn record() -> EngineRecord {
        use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
        use seu_repr::Representative;
        use seu_text::Analyzer;
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "surface roughness metal cutting");
        b.add_document("d1", "grinding wheel wear metal");
        let e = SearchEngine::new(b.build());
        let c = e.collection();
        EngineRecord {
            name: "adapter-probe".into(),
            analyzer: c.analyzer_config(),
            scheme: c.scheme(),
            fingerprint: e.fingerprint(),
            doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
            vocab: Arc::new(c.vocab().clone()),
            repr: Arc::new(Representative::build(c)),
        }
    }

    #[test]
    fn put_returns_canonical_and_get_serves_the_same_bits() {
        let store = CompressedStore::new(MemBlobs::default());
        let rec = record();
        let canonical = store.put(&rec).unwrap();
        let served = store.get(rec.fingerprint).unwrap().unwrap();
        for (id, s) in canonical.repr.iter() {
            let t = served.repr.get(id).unwrap();
            assert_eq!(s.p.to_bits(), t.p.to_bits());
            assert_eq!(s.mean.to_bits(), t.mean.to_bits());
            assert_eq!(s.std_dev.to_bits(), t.std_dev.to_bits());
            assert_eq!(s.max.to_bits(), t.max.to_bits());
        }
        // Re-putting the same source record encodes to the same bytes
        // and is served back without drift.
        let again = store.put(&rec).unwrap();
        for (id, s) in canonical.repr.iter() {
            let t = again.repr.get(id).unwrap();
            assert_eq!(s.p.to_bits(), t.p.to_bits());
        }
    }

    #[test]
    fn mismatched_fingerprint_in_stored_bytes_is_corrupt() {
        let blobs = MemBlobs::default();
        let rec = record();
        let bytes = codec::encode_record(&rec);
        let wrong_key = Fingerprint {
            hash: rec.fingerprint.hash ^ 1,
            ..rec.fingerprint
        };
        blobs.put_bytes(wrong_key, &bytes).unwrap();
        let store = CompressedStore::new(blobs);
        let err = store.get(wrong_key).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Corrupt);
    }

    #[test]
    fn missing_key_is_a_clean_none() {
        let store = CompressedStore::new(MemBlobs::default());
        let rec = record();
        assert!(store.get(rec.fingerprint).unwrap().is_none());
        assert!(!store.contains(rec.fingerprint));
    }
}
