//! The cold-tier record codec: one engine's planning metadata plus its
//! representative in the paper's §3.2 one-byte quantized form.
//!
//! A payload carries everything the broker needs to plan and estimate
//! for an engine it has never seen: name, analyzer configuration,
//! weighting scheme, collection fingerprint, the term vocabulary with
//! per-term document frequencies (in the collection's own term-id
//! order, which is what keeps restored query vectors bit-identical to
//! live ones), and the four trained [`ByteQuantizer`]s with one byte
//! per representative number.
//!
//! Quantizer reconstruction tables are stored *sparsely*: only the
//! levels that differ from the untrained interval midpoint
//! ([`ByteQuantizer::default_level`]) are written, so a tiny engine
//! costs a handful of exception entries instead of 4 × 256 fixed
//! doubles. For a fully trained quantizer the worst case is 256
//! exceptions — still bounded.
//!
//! Decoding validates everything: magic, version, enum tags, strictly
//! increasing in-range term ids, duplicate-free vocabulary, and a
//! trailing-byte check. Every length read from the payload is capped
//! against the bytes actually remaining before any allocation, so a
//! length-lying payload cannot drive an overallocation (the
//! `FrozenSummary::from_bytes` discipline).

use crate::{StoreError, StoreErrorKind};
use bytes::BufMut;
use seu_engine::{Fingerprint, WeightingScheme};
use seu_repr::{QuantizedRepresentative, Representative};
use seu_stats::ByteQuantizer;
use seu_text::{AnalyzerConfig, TermId, Vocabulary};
use std::sync::Arc;

/// Magic prefix of a cold-tier record: `"SEUR"`.
pub const RECORD_MAGIC: u32 = 0x5345_5552;
/// Record format version.
pub const RECORD_VERSION: u16 = 1;

/// Minimum bytes a per-term vocabulary row can occupy (empty name: u16
/// length + u32 doc frequency) — the divisor for the row-count
/// allocation cap.
const MIN_TERM_RECORD_BYTES: usize = 2 + 4;
/// Minimum bytes a code row occupies (u32 term id + 4 code bytes).
const MIN_CODE_RECORD_BYTES: usize = 4 + 4;

/// One engine's decoded store record: the hot-tier value, and what
/// [`crate::ReprStore::put`] canonicalizes to.
///
/// `vocab`, `doc_freq`, and `repr` are id-aligned with the source
/// collection's term ids (row `i` of each describes the collection's
/// term `i`), exactly like a remote engine's snapshot — so a broker can
/// plan against a record with the same term-translation path it uses
/// for remote engines, producing bit-identical query vectors.
#[derive(Debug, Clone)]
pub struct EngineRecord {
    /// Engine name (registration key).
    pub name: String,
    /// Analysis pipeline configuration of the engine.
    pub analyzer: AnalyzerConfig,
    /// Weighting scheme of the engine.
    pub scheme: WeightingScheme,
    /// Content fingerprint of the summarized collection — the record's
    /// key in the store.
    pub fingerprint: Fingerprint,
    /// Per-term document frequency, indexed by the collection's term
    /// ids.
    pub doc_freq: Arc<Vec<u32>>,
    /// The collection's term vocabulary, in term-id order.
    pub vocab: Arc<Vocabulary>,
    /// The representative, id-aligned with `vocab`.
    pub repr: Arc<Representative>,
}

impl EngineRecord {
    /// Documents in the collection, as the u32 remote-planning APIs
    /// expect it.
    pub fn n_docs(&self) -> u32 {
        self.fingerprint.n_docs.min(u64::from(u32::MAX)) as u32
    }

    /// Internal alignment invariant: one vocabulary row per doc-freq
    /// row per representative row.
    pub fn is_consistent(&self) -> bool {
        self.doc_freq.len() == self.vocab.len() && self.repr.table_len() == self.vocab.len()
    }

    /// Approximate resident bytes of the decoded record — the hot
    /// tier's budget accounting.
    pub fn cost(&self) -> usize {
        let terms: usize = self.vocab.iter().map(|(_, t)| t.len() + 24).sum();
        std::mem::size_of::<Self>()
            + self.name.len()
            + self.doc_freq.len() * 4
            + terms
            + self.repr.bytes_resident() as usize
    }
}

/// Maps a scheme to its wire tag and parameter (same tags as the engine
/// persistence codec, so on-disk artifacts agree about scheme ids).
pub(crate) fn scheme_tag(scheme: WeightingScheme) -> (u8, f64) {
    match scheme {
        WeightingScheme::CosineTf => (0, 0.0),
        WeightingScheme::CosineLogTf => (1, 0.0),
        WeightingScheme::CosineTfIdf => (2, 0.0),
        WeightingScheme::PivotedLogTf { slope } => (3, slope),
    }
}

pub(crate) fn scheme_from_tag(tag: u8, param: f64) -> Option<WeightingScheme> {
    match tag {
        0 => Some(WeightingScheme::CosineTf),
        1 => Some(WeightingScheme::CosineLogTf),
        2 => Some(WeightingScheme::CosineTfIdf),
        3 if param.is_finite() => Some(WeightingScheme::PivotedLogTf { slope: param }),
        _ => None,
    }
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= usize::from(u16::MAX), "string too long for u16");
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_quantizer(buf: &mut Vec<u8>, q: &ByteQuantizer) {
    let (lo, hi) = q.range();
    buf.put_f64(lo);
    buf.put_f64(hi);
    let exceptions: Vec<(u8, f64)> = q
        .levels()
        .iter()
        .enumerate()
        .filter(|&(i, l)| l.to_bits() != ByteQuantizer::default_level(lo, hi, i as u8).to_bits())
        .map(|(i, &l)| (i as u8, l))
        .collect();
    buf.put_u16(exceptions.len() as u16);
    for (code, level) in exceptions {
        buf.put_u8(code);
        buf.put_f64(level);
    }
}

/// A checked read cursor: every primitive verifies the remaining length
/// first and fails with a [`StoreErrorKind::Corrupt`] error instead of
/// panicking on truncated input.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.buf.len() < n {
            return Err(StoreError::corrupt(format!(
                "truncated record: {what} needs {n} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16, StoreError> {
        Ok(u16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, StoreError> {
        let len = usize::from(self.u16(what)?);
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{what}: invalid UTF-8")))
    }
}

pub(crate) fn get_bool(r: &mut Reader<'_>, what: &str) -> Result<bool, StoreError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(StoreError::corrupt(format!("{what}: invalid bool {other}"))),
    }
}

fn get_quantizer(r: &mut Reader<'_>) -> Result<ByteQuantizer, StoreError> {
    let lo = r.f64("quantizer lo")?;
    let hi = r.f64("quantizer hi")?;
    // NaN bounds are corrupt too, so a plain `lo > hi` is not enough.
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return Err(StoreError::corrupt(format!(
            "quantizer range [{lo}, {hi}] is invalid"
        )));
    }
    let n = usize::from(r.u16("quantizer exception count")?);
    if n > 256 {
        return Err(StoreError::corrupt(format!(
            "quantizer claims {n} exception levels (max 256)"
        )));
    }
    let mut levels: Vec<f64> = (0..=255u8)
        .map(|code| ByteQuantizer::default_level(lo, hi, code))
        .collect();
    for _ in 0..n {
        let code = r.u8("quantizer exception code")?;
        levels[usize::from(code)] = r.f64("quantizer exception level")?;
    }
    ByteQuantizer::from_parts(lo, hi, levels)
        .ok_or_else(|| StoreError::corrupt("quantizer parts rejected"))
}

/// Encodes a record into its cold-tier payload: metadata, sparse
/// quantizer tables, one-byte codes, and the vocabulary rows.
///
/// The representative is quantized here (trained on the record's own
/// values); decoding therefore yields the quantized *round-trip* of
/// the input, which is exactly what [`crate::ReprStore::put`] hands
/// back as the canonical record.
pub fn encode_record(record: &EngineRecord) -> Vec<u8> {
    assert!(
        record.is_consistent(),
        "record rows must align: {} vocab / {} doc_freq / {} repr rows",
        record.vocab.len(),
        record.doc_freq.len(),
        record.repr.table_len()
    );
    let q = QuantizedRepresentative::from_representative(&record.repr);
    let mut buf = Vec::with_capacity(64 + record.vocab.len() * 16);
    buf.put_u32(RECORD_MAGIC);
    buf.put_u16(RECORD_VERSION);
    put_str(&mut buf, &record.name);
    buf.put_u8(u8::from(record.analyzer.remove_stopwords));
    buf.put_u8(u8::from(record.analyzer.stem));
    let (tag, param) = scheme_tag(record.scheme);
    buf.put_u8(tag);
    buf.put_f64(param);
    buf.put_u64(record.fingerprint.n_docs);
    buf.put_u64(record.fingerprint.raw_bytes);
    buf.put_u64(record.fingerprint.hash);
    buf.put_u64(q.n_docs());
    buf.put_u64(q.collection_bytes());
    buf.put_u32(q.table_len() as u32);
    for quantizer in q.quantizers() {
        put_quantizer(&mut buf, quantizer);
    }
    buf.put_u32(q.codes().len() as u32);
    for &(term, codes) in q.codes() {
        buf.put_u32(term.0);
        buf.put_slice(&codes);
    }
    for (id, term) in record.vocab.iter() {
        put_str(&mut buf, term);
        buf.put_u32(record.doc_freq[id.index()]);
    }
    buf
}

/// Decodes a cold-tier payload back into an [`EngineRecord`],
/// validating every field and capping every claimed length against the
/// bytes actually present before allocating.
pub fn decode_record(bytes: &[u8]) -> Result<EngineRecord, StoreError> {
    let mut r = Reader::new(bytes);
    let magic = r.u32("magic")?;
    if magic != RECORD_MAGIC {
        return Err(StoreError::corrupt(format!("bad record magic {magic:#x}")));
    }
    let version = r.u16("version")?;
    if version != RECORD_VERSION {
        return Err(StoreError::new(
            StoreErrorKind::Corrupt,
            format!("unsupported record version {version}"),
        ));
    }
    let name = r.str("engine name")?;
    let analyzer = AnalyzerConfig {
        remove_stopwords: get_bool(&mut r, "analyzer stopword flag")?,
        stem: get_bool(&mut r, "analyzer stem flag")?,
    };
    let tag = r.u8("scheme tag")?;
    let param = r.f64("scheme param")?;
    let scheme = scheme_from_tag(tag, param)
        .ok_or_else(|| StoreError::corrupt(format!("unknown weighting scheme tag {tag}")))?;
    let fingerprint = Fingerprint {
        n_docs: r.u64("fingerprint n_docs")?,
        raw_bytes: r.u64("fingerprint raw_bytes")?,
        hash: r.u64("fingerprint hash")?,
    };
    let n_docs = r.u64("repr n_docs")?;
    let collection_bytes = r.u64("collection bytes")?;
    let rows = r.u32("row count")? as usize;
    let quantizers = [
        get_quantizer(&mut r)?,
        get_quantizer(&mut r)?,
        get_quantizer(&mut r)?,
        get_quantizer(&mut r)?,
    ];
    let n_codes = r.u32("code count")? as usize;
    if n_codes > rows {
        return Err(StoreError::corrupt(format!(
            "{n_codes} codes for {rows} rows"
        )));
    }
    // Cap-before-allocate: a lying count cannot reserve more entries
    // than the remaining bytes could possibly encode.
    let mut codes: Vec<(TermId, [u8; 4])> =
        Vec::with_capacity(n_codes.min(r.remaining() / MIN_CODE_RECORD_BYTES));
    let mut prev: Option<u32> = None;
    for _ in 0..n_codes {
        let term = r.u32("code term id")?;
        if term as usize >= rows || prev.is_some_and(|p| term <= p) {
            return Err(StoreError::corrupt(format!(
                "code term id {term} out of order or out of range (rows {rows})"
            )));
        }
        prev = Some(term);
        let mut c = [0u8; 4];
        c.copy_from_slice(r.take(4, "code bytes")?);
        codes.push((TermId(term), c));
    }
    let mut vocab = Vocabulary::new();
    let mut doc_freq: Vec<u32> =
        Vec::with_capacity(rows.min(r.remaining() / MIN_TERM_RECORD_BYTES));
    for i in 0..rows {
        let term = r.str("vocabulary term")?;
        let df = r.u32("doc frequency")?;
        if vocab.intern(&term).index() != i {
            return Err(StoreError::corrupt(format!(
                "duplicate vocabulary term {term:?} at row {i}"
            )));
        }
        doc_freq.push(df);
    }
    if r.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} trailing bytes after record",
            r.remaining()
        )));
    }
    let quantized =
        QuantizedRepresentative::from_parts(n_docs, collection_bytes, rows, codes, quantizers)
            .ok_or_else(|| StoreError::corrupt("quantized representative parts rejected"))?;
    Ok(EngineRecord {
        name,
        analyzer,
        scheme,
        fingerprint,
        doc_freq: Arc::new(doc_freq),
        vocab: Arc::new(vocab),
        repr: Arc::new(quantized.decode()),
    })
}

/// The canonical (quantized round-trip) form of a record, computed
/// purely in memory — what a store-attached broker installs even when
/// the disk write itself fails, so estimates stay bit-identical with a
/// later restore from a healthy store.
pub fn roundtrip(record: &EngineRecord) -> EngineRecord {
    decode_record(&encode_record(record)).expect("decoding our own encoding cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use seu_engine::{CollectionBuilder, SearchEngine};
    use seu_text::Analyzer;

    fn engine(texts: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&format!("d{i}"), t);
        }
        SearchEngine::new(b.build())
    }

    fn record(texts: &[&str]) -> EngineRecord {
        let e = engine(texts);
        let c = e.collection();
        EngineRecord {
            name: "probe".into(),
            analyzer: c.analyzer_config(),
            scheme: c.scheme(),
            fingerprint: e.fingerprint(),
            doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
            vocab: Arc::new(c.vocab().clone()),
            repr: Arc::new(Representative::build(c)),
        }
    }

    #[test]
    fn round_trip_preserves_metadata_and_is_a_fixpoint() {
        let rec = record(&[
            "surface roughness metal cutting",
            "grinding wheel wear metal",
            "tool geometry cutting force",
        ]);
        let decoded = roundtrip(&rec);
        assert_eq!(decoded.name, rec.name);
        assert_eq!(decoded.analyzer, rec.analyzer);
        assert_eq!(decoded.scheme, rec.scheme);
        assert_eq!(decoded.fingerprint, rec.fingerprint);
        assert_eq!(*decoded.doc_freq, *rec.doc_freq);
        assert_eq!(decoded.vocab.len(), rec.vocab.len());
        for (id, term) in rec.vocab.iter() {
            assert_eq!(decoded.vocab.term(id), term);
        }
        assert!(decoded.is_consistent());
        // Quantization error stays within the paper's interval bound.
        for (id, s) in rec.repr.iter() {
            let d = decoded.repr.get(id).expect("term survives quantization");
            assert!((s.p - d.p).abs() <= 1.0 / 256.0 + 1e-9);
        }
        // Decoding is a fixpoint: the canonical bytes decode to
        // themselves, which is what makes snapshot/restore bit-stable.
        let bytes = encode_record(&rec);
        let again = decode_record(&bytes).unwrap();
        for (id, s) in decoded.repr.iter() {
            let a = again.repr.get(id).unwrap();
            assert_eq!(s.p.to_bits(), a.p.to_bits());
            assert_eq!(s.mean.to_bits(), a.mean.to_bits());
            assert_eq!(s.std_dev.to_bits(), a.std_dev.to_bits());
            assert_eq!(s.max.to_bits(), a.max.to_bits());
        }
    }

    #[test]
    fn empty_collection_round_trips() {
        let rec = record(&[]);
        let decoded = roundtrip(&rec);
        assert_eq!(decoded.vocab.len(), 0);
        assert_eq!(decoded.repr.distinct_terms(), 0);
    }

    #[test]
    fn sparse_quantizer_tables_keep_tiny_records_tiny() {
        let rec = record(&["alpha beta", "beta gamma"]);
        let bytes = encode_record(&rec);
        // Dense tables alone would cost 4 * 256 * 8 = 8192 bytes; the
        // sparse encoding must stay well under that for a tiny engine.
        assert!(
            bytes.len() < 2048,
            "tiny record encoded to {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn rejects_wrong_magic_version_and_truncation() {
        let rec = record(&["alpha beta gamma"]);
        let bytes = encode_record(&rec);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            decode_record(&wrong_magic).unwrap_err().kind,
            StoreErrorKind::Corrupt
        );

        let mut wrong_version = bytes.clone();
        wrong_version[5] = 0xEE;
        assert_eq!(
            decode_record(&wrong_version).unwrap_err().kind,
            StoreErrorKind::Corrupt
        );

        for cut in [0, 1, 6, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        assert!(decode_record(&[]).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let rec = record(&["alpha beta gamma"]);
        let mut bytes = encode_record(&rec);
        bytes.push(0);
        let err = decode_record(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn length_lying_row_count_fails_without_overallocation() {
        // A payload claiming u32::MAX rows with only a few bytes behind
        // it must fail fast; the allocation cap keeps the reserve
        // proportional to the actual remaining bytes.
        let rec = record(&["alpha beta gamma delta"]);
        let bytes = encode_record(&rec);
        // Find the row-count offset: magic(4) + version(2) +
        // name(2+5) + analyzer(2) + scheme(9) + fingerprint(24) +
        // n_docs(8) + bytes(8) = 64, rows at 64..68.
        let rows_at = 4 + 2 + 2 + rec.name.len() + 2 + 9 + 24 + 8 + 8;
        let mut lying = bytes.clone();
        lying[rows_at..rows_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_record(&lying).is_err());

        // Same for the code count (directly after the 4 quantizers).
        let err = decode_record(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Corrupt);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Encode → decode is the identity on already-canonical records
        /// (modulo quantization, which decode applies identically on
        /// both sides) for arbitrary small corpora.
        #[test]
        fn round_trip_identity_over_random_corpora(
            seed in 0u64..5000,
            n_docs in 1usize..12,
        ) {
            const POOL: &[&str] = &[
                "database", "index", "query", "vector", "ranking", "term",
                "network", "storage", "cache", "shard", "merge", "filter",
            ];
            let mut b = CollectionBuilder::new(
                Analyzer::paper_default(),
                WeightingScheme::CosineTf,
            );
            let mut s = seed;
            for i in 0..n_docs {
                let mut text = String::new();
                for _ in 0..3 + (s % 5) {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    text.push_str(POOL[(s >> 33) as usize % POOL.len()]);
                    text.push(' ');
                }
                b.add_document(&format!("d{i}"), &text);
            }
            let e = SearchEngine::new(b.build());
            let c = e.collection();
            let rec = EngineRecord {
                name: format!("prop-{seed}"),
                analyzer: c.analyzer_config(),
                scheme: c.scheme(),
                fingerprint: e.fingerprint(),
                doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
                vocab: Arc::new(c.vocab().clone()),
                repr: Arc::new(Representative::build(c)),
            };
            let first = roundtrip(&rec);
            prop_assert!(first.is_consistent());
            prop_assert_eq!(first.vocab.len(), rec.vocab.len());
            // Re-encoding the canonical record and decoding again must
            // reproduce it bit-for-bit.
            let second = decode_record(&encode_record(&rec)).unwrap();
            for (id, s) in first.repr.iter() {
                let t = second.repr.get(id).unwrap();
                prop_assert_eq!(s.p.to_bits(), t.p.to_bits());
                prop_assert_eq!(s.mean.to_bits(), t.mean.to_bits());
                prop_assert_eq!(s.std_dev.to_bits(), t.std_dev.to_bits());
                prop_assert_eq!(s.max.to_bits(), t.max.to_bits());
            }
        }

        /// Arbitrary corruption never panics, never overallocates, and
        /// either decodes cleanly or reports a typed error.
        #[test]
        fn corruption_is_rejected_or_harmless(
            seed in 0u64..2000,
            flip_at in 0usize..4096,
            flip_bits in 1u64..256,
        ) {
            let rec = {
                let e = engine(&["alpha beta gamma", "beta delta", "gamma epsilon zeta"]);
                let c = e.collection();
                EngineRecord {
                    name: format!("c{seed}"),
                    analyzer: c.analyzer_config(),
                    scheme: c.scheme(),
                    fingerprint: e.fingerprint(),
                    doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
                    vocab: Arc::new(c.vocab().clone()),
                    repr: Arc::new(Representative::build(c)),
                }
            };
            let mut bytes = encode_record(&rec);
            let at = flip_at % bytes.len();
            bytes[at] ^= flip_bits as u8;
            // Must not panic; a surviving decode must still be
            // internally consistent.
            if let Ok(decoded) = decode_record(&bytes) {
                prop_assert!(decoded.is_consistent());
            }
        }

        /// Truncation at every prefix length is rejected without
        /// panicking or allocating past the input.
        #[test]
        fn every_truncation_is_rejected(cut_ratio in 0.0f64..1.0) {
            let rec = record(&["alpha beta gamma delta", "beta epsilon"]);
            let bytes = encode_record(&rec);
            let cut = ((bytes.len() - 1) as f64 * cut_ratio) as usize;
            prop_assert!(decode_record(&bytes[..cut]).is_err());
        }
    }
}
