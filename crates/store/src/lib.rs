//! Tiered persistent store for portable engine representatives.
//!
//! A broker restart used to rebuild (or re-ship) every representative —
//! at the 10k–1M engine scale, cold start *is* the availability story.
//! This crate gives the broker a content-hash-addressed on-disk store it
//! can snapshot its whole registry into and restore from in manifest
//! time, hydrating representatives lazily on first touch:
//!
//! * **Cold tier** — append-only segment files holding each
//!   representative in the paper's §3.2 one-byte quantized codec
//!   ([`seu_repr::QuantizedRepresentative`] over
//!   [`seu_stats::ByteQuantizer`]), CRC-checked and keyed by the
//!   engine's [`Fingerprint`] content hash. Quantization changes
//!   estimates essentially not at all (Tables 7–9) and halves storage —
//!   the compressed format comes for free from the paper.
//! * **Hot tier** — decoded [`EngineRecord`]s behind a byte-budgeted
//!   segmented-LRU cache, so repeated hydrations of the same engines
//!   stay in memory.
//! * **Manifest** — a versioned, fsync'd, atomically swapped file
//!   recording a consistent per-shard epoch cut of the registry plus the
//!   segment location of every entry's payload.
//!
//! The store is layered in the prism-storage style: [`LocalStore`]
//! implements the byte-level [`BlobStore`]; [`CompressedStore`] adapts
//! it to the record-level [`ReprStore`] via the quantized codec;
//! [`CachedStore`] adds the hot tier. [`open_tiered`] assembles the
//! full [`TieredStore`] stack.
//!
//! **Canonicalization contract:** [`ReprStore::put`] returns the exact
//! record a later [`ReprStore::get`] will serve — the quantized
//! *round-trip* of the input, not the input itself. A broker that
//! installs the returned record serves bit-identical estimates before
//! and after a snapshot/restore cycle, because both sides decode the
//! same canonical bytes.
//!
//! Every untrusted length decoded from disk is capped against the
//! remaining input before allocation, mirroring
//! `FrozenSummary::from_bytes`, so corrupt or adversarial files cannot
//! drive huge allocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cached;
pub mod codec;
pub mod compressed;
pub mod local;

pub use cached::CachedStore;
pub use codec::EngineRecord;
pub use compressed::CompressedStore;
pub use local::LocalStore;

use seu_engine::Fingerprint;
use seu_text::AnalyzerConfig;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// What went wrong in a store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// The underlying filesystem operation failed.
    Io,
    /// Bytes on disk failed validation (bad magic/version, CRC
    /// mismatch, length lies, out-of-range ids).
    Corrupt,
    /// A required key or file is absent.
    Missing,
    /// The operation is not valid in the caller's current state (e.g.
    /// restoring into a non-empty broker, or snapshotting a broker
    /// built without a store).
    Invalid,
}

/// A store operation failed; carries the failure class and a
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The failure class.
    pub kind: StoreErrorKind,
    /// Human-readable context (path, key, expected-vs-got).
    pub detail: String,
}

impl StoreError {
    /// Builds an error of the given kind.
    pub fn new(kind: StoreErrorKind, detail: impl Into<String>) -> Self {
        StoreError {
            kind,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`StoreErrorKind::Corrupt`] error.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StoreError::new(StoreErrorKind::Corrupt, detail)
    }

    /// Shorthand for a [`StoreErrorKind::Missing`] error.
    pub fn missing(detail: impl Into<String>) -> Self {
        StoreError::new(StoreErrorKind::Missing, detail)
    }

    /// Shorthand for a [`StoreErrorKind::Invalid`] error.
    pub fn invalid(detail: impl Into<String>) -> Self {
        StoreError::new(StoreErrorKind::Invalid, detail)
    }

    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: &Path, err: std::io::Error) -> Self {
        StoreError::new(StoreErrorKind::Io, format!("{}: {err}", path.display()))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            StoreErrorKind::Io => "io",
            StoreErrorKind::Corrupt => "corrupt",
            StoreErrorKind::Missing => "missing",
            StoreErrorKind::Invalid => "invalid",
        };
        write!(f, "store {kind} error: {}", self.detail)
    }
}

impl std::error::Error for StoreError {}

/// How the broker reached a persisted engine when it was snapshotted,
/// so a restore can report (and later reattach) it faithfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// The engine lived in the broker's process.
    Local,
    /// The engine was reached over a transport.
    Remote {
        /// The transport endpoint at snapshot time.
        endpoint: String,
    },
    /// The engine shipped its representative (no full fingerprint
    /// provenance; staleness is judged on the shipped totals).
    Shipped,
}

/// One engine's row in the [`Manifest`]: everything the broker needs to
/// start serving registry statuses *without* touching the cold tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Engine name (registration key).
    pub name: String,
    /// Broker-wide registration sequence number.
    pub seq: u64,
    /// The entry's lifecycle epoch at the cut.
    pub epoch: u64,
    /// Content fingerprint of the summarized collection — also the
    /// payload's key in the cold tier.
    pub fingerprint: Fingerprint,
    /// How the engine was reached at snapshot time.
    pub kind: EntryKind,
    /// Analyzer configuration of the engine (drives shared analysis
    /// before the payload is hydrated).
    pub analyzer: AnalyzerConfig,
    /// Weighting scheme of the engine.
    pub scheme: seu_engine::WeightingScheme,
    /// Distinct terms in the representative (status reporting while
    /// cold).
    pub repr_terms: u64,
    /// Approximate resident bytes of the decoded representative.
    pub repr_bytes: u64,
}

/// A consistent cut of a broker registry, persisted alongside the
/// segment files. `epoch` is the sum of `shard_epochs`; each shard's
/// entries and epoch were read under one lock acquisition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Broker-global registry epoch at the cut.
    pub epoch: u64,
    /// Per-shard epochs at the cut (the shard count the snapshotting
    /// broker ran with; a restoring broker may re-shard freely).
    pub shard_epochs: Vec<u64>,
    /// The registration sequence counter's next value, so restored
    /// registrations keep globally increasing sequence numbers.
    pub next_seq: u64,
    /// Per-engine rows, in registration (sequence) order.
    pub entries: Vec<ManifestEntry>,
}

/// Byte-level tier: opaque payloads addressed by content fingerprint.
///
/// `put_bytes` is append-only on disk with last-write-wins addressing:
/// re-putting a key appends a fresh record and repoints the index at it
/// (the old record becomes an unreferenced tail). Durability is
/// deferred to [`BlobStore::commit`], which must flush segments and
/// atomically swap the manifest before returning.
pub trait BlobStore: Send + Sync {
    /// Fetches the payload stored under `key`, verifying integrity.
    fn get_bytes(&self, key: Fingerprint) -> Result<Option<Vec<u8>>, StoreError>;
    /// Stores a payload under `key`, replacing any previous payload
    /// (last write wins; the append-only segment keeps the old bytes as
    /// an unreferenced record).
    fn put_bytes(&self, key: Fingerprint, bytes: &[u8]) -> Result<(), StoreError>;
    /// Whether a payload is stored under `key`.
    fn contains(&self, key: Fingerprint) -> bool;
    /// The last committed manifest.
    fn manifest(&self) -> Manifest;
    /// Durably persists `manifest`: flushes pending segment writes,
    /// writes the manifest to a temp file, fsyncs, and renames it over
    /// the live one. Fails if any entry's payload is absent.
    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError>;
}

/// Record-level tier: decoded representatives addressed by fingerprint.
pub trait ReprStore: Send + Sync {
    /// Fetches the canonical decoded record stored under `key`.
    fn get(&self, key: Fingerprint) -> Result<Option<Arc<EngineRecord>>, StoreError>;
    /// Stores `record` under its fingerprint and returns the
    /// **canonical** record a later [`ReprStore::get`] will serve — the
    /// quantized round-trip of the input, not the input itself. Callers
    /// that keep serving the representative must install the returned
    /// record to stay bit-identical with a later restore. Re-putting a
    /// byte-identical record is a no-op; putting a *different* record
    /// under the same fingerprint (an engine shipped a replacement
    /// representative for the same collection) replaces the stored one
    /// (last write wins).
    fn put(&self, record: &EngineRecord) -> Result<Arc<EngineRecord>, StoreError>;
    /// Whether a record is stored under `key`.
    fn contains(&self, key: Fingerprint) -> bool;
    /// The last committed manifest.
    fn manifest(&self) -> Manifest;
    /// Durably persists `manifest` (see [`BlobStore::commit`]).
    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError>;
}

impl<S: ReprStore + ?Sized> ReprStore for Arc<S> {
    fn get(&self, key: Fingerprint) -> Result<Option<Arc<EngineRecord>>, StoreError> {
        (**self).get(key)
    }
    fn put(&self, record: &EngineRecord) -> Result<Arc<EngineRecord>, StoreError> {
        (**self).put(record)
    }
    fn contains(&self, key: Fingerprint) -> bool {
        (**self).contains(key)
    }
    fn manifest(&self) -> Manifest {
        (**self).manifest()
    }
    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
        (**self).commit(manifest)
    }
}

/// The full store stack: hot tier over quantized cold tier over local
/// segment files.
pub type TieredStore = CachedStore<CompressedStore<LocalStore>>;

/// Opens (or creates) the full tiered store at `root` with the given
/// hot-tier byte budget.
pub fn open_tiered(root: impl AsRef<Path>, hot_budget: usize) -> Result<TieredStore, StoreError> {
    Ok(CachedStore::new(
        CompressedStore::new(LocalStore::open(root)?),
        hot_budget,
    ))
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// segment payloads and the manifest. Bitwise (table-free): store
/// payloads are small enough that simplicity beats a lookup table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Instrument handles cached once per process (`broker_store_*`
/// family).
pub(crate) struct StoreMetrics {
    pub(crate) hot_hits: Arc<seu_obs::Counter>,
    pub(crate) hot_misses: Arc<seu_obs::Counter>,
    pub(crate) cold_hits: Arc<seu_obs::Counter>,
    pub(crate) cold_misses: Arc<seu_obs::Counter>,
    pub(crate) writes: Arc<seu_obs::Counter>,
    pub(crate) hot_bytes: Arc<seu_obs::Gauge>,
    pub(crate) cold_bytes: Arc<seu_obs::Gauge>,
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        hot_hits: seu_obs::counter("broker_store_hot_hits_total"),
        hot_misses: seu_obs::counter("broker_store_hot_misses_total"),
        cold_hits: seu_obs::counter("broker_store_cold_hits_total"),
        cold_misses: seu_obs::counter("broker_store_cold_misses_total"),
        writes: seu_obs::counter("broker_store_writes_total"),
        hot_bytes: seu_obs::gauge("broker_store_hot_bytes_resident"),
        cold_bytes: seu_obs::gauge("broker_store_cold_bytes_on_disk"),
    })
}

/// Forces creation of the store's instruments so expositions include
/// the whole `broker_store_*` family even before the first access.
pub fn register_metrics() {
    let _ = store_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn store_error_display_names_kind() {
        let e = StoreError::corrupt("bad magic");
        assert!(e.to_string().contains("corrupt"));
        assert!(e.to_string().contains("bad magic"));
        let e = StoreError::missing("no manifest");
        assert!(e.to_string().contains("missing"));
    }
}
