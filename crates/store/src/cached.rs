//! The hot tier: a byte-budgeted segmented-LRU cache of decoded
//! records layered over any [`ReprStore`].
//!
//! Same replacement discipline as the broker's query cache: new
//! records enter a probationary queue; a repeat hit promotes them to a
//! protected queue holding at most [`PROTECTED_SHARE`] of the byte
//! budget, so a burst of one-touch records (a hydration sweep) cannot
//! flush the records queries actually re-touch. Queues hold lazy
//! `(key, generation)` markers — promotions and evictions bump an
//! entry's generation and stale markers are skipped on pop, which
//! keeps every operation O(1) amortized.

use crate::codec::EngineRecord;
use crate::{store_metrics, Manifest, ReprStore, StoreError};
use parking_lot::Mutex;
use seu_engine::Fingerprint;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Fraction of the byte budget the protected segment may occupy.
pub const PROTECTED_SHARE: f64 = 0.8;

struct HotEntry {
    record: Arc<EngineRecord>,
    cost: usize,
    gen: u64,
    protected: bool,
}

#[derive(Default)]
struct HotState {
    map: HashMap<Fingerprint, HotEntry>,
    probation: VecDeque<(Fingerprint, u64)>,
    protected: VecDeque<(Fingerprint, u64)>,
    bytes: usize,
    protected_bytes: usize,
    next_gen: u64,
    published: f64,
}

impl HotState {
    fn bump_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    /// Drops stale queue markers once a queue grows well past the live
    /// entry count, bounding memory under heavy re-touch traffic.
    fn compact(&mut self) {
        let live = self.map.len();
        for is_protected in [false, true] {
            let queue = if is_protected {
                &self.protected
            } else {
                &self.probation
            };
            if queue.len() <= 4 * live + 16 {
                continue;
            }
            let map = &self.map;
            let kept: VecDeque<(Fingerprint, u64)> = queue
                .iter()
                .filter(|(key, gen)| {
                    map.get(key)
                        .is_some_and(|e| e.gen == *gen && e.protected == is_protected)
                })
                .copied()
                .collect();
            if is_protected {
                self.protected = kept;
            } else {
                self.probation = kept;
            }
        }
    }

    /// Pops the least-recent *live* probationary entry, else the
    /// least-recent protected one; returns false when nothing is left.
    fn evict_one(&mut self) -> bool {
        loop {
            let (key, gen, from_protected) = match self.probation.pop_front() {
                Some((k, g)) => (k, g, false),
                None => match self.protected.pop_front() {
                    Some((k, g)) => (k, g, true),
                    None => return false,
                },
            };
            let live = self
                .map
                .get(&key)
                .is_some_and(|e| e.gen == gen && e.protected == from_protected);
            if !live {
                continue;
            }
            let entry = self.map.remove(&key).expect("entry existence just checked");
            self.bytes -= entry.cost;
            if entry.protected {
                self.protected_bytes -= entry.cost;
            }
            return true;
        }
    }

    /// Demotes least-recent protected entries to probation until the
    /// protected segment fits its share of the budget.
    fn enforce_protected_cap(&mut self, budget: usize) {
        let cap = (budget as f64 * PROTECTED_SHARE) as usize;
        while self.protected_bytes > cap {
            let (key, gen) = match self.protected.pop_front() {
                Some(front) => front,
                None => break,
            };
            let Some(entry) = self.map.get_mut(&key) else {
                continue;
            };
            if entry.gen != gen || !entry.protected {
                continue;
            }
            entry.protected = false;
            self.protected_bytes -= entry.cost;
            let fresh = self.next_gen + 1;
            self.next_gen = fresh;
            entry.gen = fresh;
            self.probation.push_back((key, fresh));
        }
    }

    fn insert(&mut self, key: Fingerprint, record: Arc<EngineRecord>, budget: usize) {
        let cost = record.cost();
        if cost > budget {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cost;
            if old.protected {
                self.protected_bytes -= old.cost;
            }
        }
        let gen = self.bump_gen();
        self.map.insert(
            key,
            HotEntry {
                record,
                cost,
                gen,
                protected: false,
            },
        );
        self.bytes += cost;
        self.probation.push_back((key, gen));
        while self.bytes > budget {
            if !self.evict_one() {
                break;
            }
        }
        self.compact();
    }

    /// Marks a present entry as re-touched: probationary entries are
    /// promoted to protected, protected ones move to most-recent.
    fn touch(&mut self, key: Fingerprint, budget: usize) {
        let gen = self.bump_gen();
        let Some(entry) = self.map.get_mut(&key) else {
            return;
        };
        entry.gen = gen;
        if !entry.protected {
            entry.protected = true;
            self.protected_bytes += entry.cost;
        }
        self.protected.push_back((key, gen));
        self.enforce_protected_cap(budget);
        self.compact();
    }

    fn publish(&mut self) {
        let delta = self.bytes as f64 - self.published;
        if delta != 0.0 {
            store_metrics().hot_bytes.add(delta);
            self.published = self.bytes as f64;
        }
    }
}

/// Hot-tier adapter: serves decoded records from a byte-budgeted
/// segmented-LRU cache, falling through to the wrapped store on miss.
pub struct CachedStore<S> {
    inner: S,
    budget: usize,
    state: Mutex<HotState>,
}

impl<S: ReprStore> CachedStore<S> {
    /// Wraps `inner` with a hot tier bounded to `budget` resident
    /// bytes (a budget of 0 disables caching entirely).
    pub fn new(inner: S, budget: usize) -> Self {
        CachedStore {
            inner,
            budget,
            state: Mutex::new(HotState::default()),
        }
    }

    /// The wrapped record store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Bytes currently resident in the hot tier.
    pub fn hot_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Records currently resident in the hot tier.
    pub fn hot_len(&self) -> usize {
        self.state.lock().map.len()
    }
}

impl<S> Drop for CachedStore<S> {
    fn drop(&mut self) {
        let mut state = self.state.lock();
        if state.published != 0.0 {
            store_metrics().hot_bytes.add(-state.published);
            state.published = 0.0;
        }
    }
}

impl<S: ReprStore> ReprStore for CachedStore<S> {
    fn get(&self, key: Fingerprint) -> Result<Option<Arc<EngineRecord>>, StoreError> {
        let m = store_metrics();
        {
            let mut state = self.state.lock();
            if let Some(entry) = state.map.get(&key) {
                let record = Arc::clone(&entry.record);
                state.touch(key, self.budget);
                state.publish();
                m.hot_hits.inc();
                return Ok(Some(record));
            }
        }
        m.hot_misses.inc();
        match self.inner.get(key)? {
            Some(record) => {
                let mut state = self.state.lock();
                state.insert(key, Arc::clone(&record), self.budget);
                state.publish();
                Ok(Some(record))
            }
            None => Ok(None),
        }
    }

    fn put(&self, record: &EngineRecord) -> Result<Arc<EngineRecord>, StoreError> {
        let canonical = self.inner.put(record)?;
        let mut state = self.state.lock();
        state.insert(canonical.fingerprint, Arc::clone(&canonical), self.budget);
        state.publish();
        Ok(canonical)
    }

    fn contains(&self, key: Fingerprint) -> bool {
        self.state.lock().map.contains_key(&key) || self.inner.contains(key)
    }

    fn manifest(&self) -> Manifest {
        self.inner.manifest()
    }

    fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
        self.inner.commit(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
    use seu_repr::Representative;
    use seu_text::Analyzer;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counting in-memory record store so tests can observe cold-tier
    /// traffic.
    #[derive(Default)]
    struct MemRepr {
        records: Mutex<HashMap<Fingerprint, Arc<EngineRecord>>>,
        gets: AtomicUsize,
    }

    impl ReprStore for MemRepr {
        fn get(&self, key: Fingerprint) -> Result<Option<Arc<EngineRecord>>, StoreError> {
            self.gets.fetch_add(1, Ordering::Relaxed);
            Ok(self.records.lock().get(&key).cloned())
        }
        fn put(&self, record: &EngineRecord) -> Result<Arc<EngineRecord>, StoreError> {
            let arc = Arc::new(record.clone());
            self.records
                .lock()
                .insert(record.fingerprint, Arc::clone(&arc));
            Ok(arc)
        }
        fn contains(&self, key: Fingerprint) -> bool {
            self.records.lock().contains_key(&key)
        }
        fn manifest(&self) -> Manifest {
            Manifest::default()
        }
        fn commit(&self, _manifest: &Manifest) -> Result<(), StoreError> {
            Ok(())
        }
    }

    fn record(i: usize) -> EngineRecord {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", &format!("alpha{i} beta{i} gamma{i}"));
        b.add_document("d1", &format!("beta{i} delta{i}"));
        let e = SearchEngine::new(b.build());
        let c = e.collection();
        EngineRecord {
            name: format!("hot-{i}"),
            analyzer: c.analyzer_config(),
            scheme: c.scheme(),
            fingerprint: e.fingerprint(),
            doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
            vocab: Arc::new(c.vocab().clone()),
            repr: Arc::new(Representative::build(c)),
        }
    }

    #[test]
    fn hits_are_served_without_touching_the_cold_tier() {
        let inner = MemRepr::default();
        let rec = record(0);
        inner.put(&rec).unwrap();
        let store = CachedStore::new(inner, 1 << 20);
        let first = store.get(rec.fingerprint).unwrap().unwrap();
        let cold_after_first = store.inner().gets.load(Ordering::Relaxed);
        let second = store.get(rec.fingerprint).unwrap().unwrap();
        assert_eq!(
            store.inner().gets.load(Ordering::Relaxed),
            cold_after_first,
            "second get must be a hot hit"
        );
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn put_primes_the_hot_tier() {
        let store = CachedStore::new(MemRepr::default(), 1 << 20);
        let rec = record(1);
        let canonical = store.put(&rec).unwrap();
        let cold_before = store.inner().gets.load(Ordering::Relaxed);
        let served = store.get(rec.fingerprint).unwrap().unwrap();
        assert_eq!(store.inner().gets.load(Ordering::Relaxed), cold_before);
        assert!(Arc::ptr_eq(&canonical, &served));
        assert!(store.hot_bytes() > 0);
    }

    #[test]
    fn budget_bounds_resident_bytes() {
        let one_cost = record(0).cost();
        let budget = one_cost * 5 / 2;
        let store = CachedStore::new(
            {
                let inner = MemRepr::default();
                for i in 0..6 {
                    inner.put(&record(i)).unwrap();
                }
                inner
            },
            budget,
        );
        for i in 0..6 {
            store.get(record(i).fingerprint).unwrap().unwrap();
            assert!(
                store.hot_bytes() <= budget,
                "resident {} exceeds budget {budget}",
                store.hot_bytes()
            );
        }
        assert!(store.hot_len() < 6, "eviction must have happened");
        drop(store);
    }

    #[test]
    fn re_touched_records_survive_one_touch_floods() {
        let inner = MemRepr::default();
        let favorite = record(0);
        inner.put(&favorite).unwrap();
        for i in 1..12 {
            inner.put(&record(i)).unwrap();
        }
        let budget = favorite.cost() * 4;
        let store = CachedStore::new(inner, budget);
        // Touch the favorite twice: probation → protected.
        store.get(favorite.fingerprint).unwrap().unwrap();
        store.get(favorite.fingerprint).unwrap().unwrap();
        // Flood with one-touch records well past the budget.
        for i in 1..12 {
            store.get(record(i).fingerprint).unwrap().unwrap();
        }
        let cold_before = store.inner().gets.load(Ordering::Relaxed);
        store.get(favorite.fingerprint).unwrap().unwrap();
        assert_eq!(
            store.inner().gets.load(Ordering::Relaxed),
            cold_before,
            "protected favorite must still be hot after the flood"
        );
    }

    #[test]
    fn zero_budget_disables_caching_but_stays_correct() {
        let inner = MemRepr::default();
        let rec = record(3);
        inner.put(&rec).unwrap();
        let store = CachedStore::new(inner, 0);
        for _ in 0..3 {
            let got = store.get(rec.fingerprint).unwrap().unwrap();
            assert_eq!(got.name, rec.name);
        }
        assert_eq!(store.hot_len(), 0);
        assert_eq!(store.inner().gets.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn oversized_record_is_served_but_not_cached() {
        let inner = MemRepr::default();
        let rec = record(4);
        inner.put(&rec).unwrap();
        let store = CachedStore::new(inner, 8);
        assert!(store.get(rec.fingerprint).unwrap().is_some());
        assert_eq!(store.hot_len(), 0);
    }
}
