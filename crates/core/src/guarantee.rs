//! The single-term identification guarantee (Section 3.1).
//!
//! With the singleton max-weight top subrange, the subrange estimator
//! assigns a database positive estimated NoDoc for a single-term query at
//! threshold `T` **iff** the database's maximum normalized weight for the
//! term exceeds `T` — exactly the databases that truly contain documents
//! above the threshold. This module provides the selection computation and
//! a checker used by property tests and the `guarantee` experiment.

use crate::subrange::SubrangeEstimator;
use crate::UsefulnessEstimator;
use seu_engine::Query;
use seu_repr::{MaxWeightMode, Representative};
use seu_text::TermId;

/// The databases (by index into `reprs`) that the subrange method selects
/// for a single-term query on `term` at threshold `threshold`.
///
/// A database is selected when its estimated NoDoc is positive (before
/// rounding — the guarantee's statement is about the estimator assigning
/// any mass above `T`).
pub fn selected_databases(
    estimator: &SubrangeEstimator,
    reprs: &[&Representative],
    term: TermId,
    threshold: f64,
) -> Vec<usize> {
    let query = Query::new([(term, 1.0)]);
    reprs
        .iter()
        .enumerate()
        .filter(|(_, r)| estimator.estimate(r, &query, threshold).no_doc > 0.0)
        .map(|(i, _)| i)
        .collect()
}

/// The databases that *truly* should be selected: those whose maximum
/// normalized weight for the term exceeds the threshold (for a single-term
/// query the top similarity in a database is exactly that maximum weight).
pub fn ideal_databases(reprs: &[&Representative], term: TermId, threshold: f64) -> Vec<usize> {
    reprs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.get(term).map(|s| s.max > threshold).unwrap_or(false))
        .map(|(i, _)| i)
        .collect()
}

/// Checks the guarantee: with stored max weights, the selected set equals
/// the ideal set. Returns the two sets for reporting.
pub fn check_guarantee(
    estimator: &SubrangeEstimator,
    reprs: &[&Representative],
    term: TermId,
    threshold: f64,
) -> (Vec<usize>, Vec<usize>, bool) {
    assert!(
        matches!(estimator.max_mode(), MaxWeightMode::Stored),
        "the guarantee only holds with stored max weights"
    );
    assert!(
        estimator.scheme().max_subrange,
        "the guarantee needs the singleton max subrange"
    );
    assert!(
        estimator.scheme().clamp_to_max,
        "the reverse direction of the guarantee needs medians clamped to the max weight"
    );
    let selected = selected_databases(estimator, reprs, term, threshold);
    let ideal = ideal_databases(reprs, term, threshold);
    let ok = selected == ideal;
    (selected, ideal, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_repr::TermStats;

    fn db(n: u64, p: f64, mean: f64, sd: f64, max: f64) -> Representative {
        Representative::from_parts(
            n,
            vec![TermStats {
                p,
                mean,
                std_dev: sd,
                max,
            }],
            0,
        )
    }

    #[test]
    fn guarantee_holds_across_thresholds() {
        let dbs = [
            db(100, 0.3, 0.40, 0.10, 0.92),
            db(250, 0.2, 0.35, 0.12, 0.81),
            db(50, 0.6, 0.50, 0.05, 0.64),
            db(500, 0.1, 0.20, 0.08, 0.45),
        ];
        let refs: Vec<&Representative> = dbs.iter().collect();
        let est = SubrangeEstimator::paper_six_subrange();
        // Sweep thresholds that interleave the max weights.
        for t in [0.3, 0.5, 0.55, 0.7, 0.85, 0.95] {
            let (selected, ideal, ok) = check_guarantee(&est, &refs, TermId(0), t);
            assert!(ok, "t={t}: selected {selected:?} != ideal {ideal:?}");
        }
    }

    #[test]
    fn threshold_between_top_two_selects_only_leader() {
        let dbs = [db(100, 0.3, 0.4, 0.1, 0.9), db(100, 0.3, 0.4, 0.1, 0.7)];
        let refs: Vec<&Representative> = dbs.iter().collect();
        let est = SubrangeEstimator::paper_six_subrange();
        let sel = selected_databases(&est, &refs, TermId(0), 0.8);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn triplet_mode_can_break_the_guarantee() {
        // A heavy-tailed weight distribution whose true max far exceeds
        // the normal 99.9-percentile estimate.
        let dbs = [db(1000, 0.05, 0.2, 0.02, 0.95)];
        let refs: Vec<&Representative> = dbs.iter().collect();
        let est = SubrangeEstimator::paper_triplet();
        // Ideal selects db 0 (max 0.95 > 0.5) but the triplet estimate of
        // the max is ~0.26 < 0.5 -> not selected.
        let sel = selected_databases(&est, &refs, TermId(0), 0.5);
        let ideal = ideal_databases(&refs, TermId(0), 0.5);
        assert_eq!(ideal, vec![0]);
        assert!(sel.is_empty());
    }

    #[test]
    #[should_panic(expected = "stored max")]
    fn checker_rejects_triplet_mode() {
        let dbs = [db(10, 0.5, 0.3, 0.1, 0.8)];
        let refs: Vec<&Representative> = dbs.iter().collect();
        check_guarantee(&SubrangeEstimator::paper_triplet(), &refs, TermId(0), 0.5);
    }
}
