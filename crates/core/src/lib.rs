//! Usefulness estimators — the paper's contribution and every baseline it
//! is compared against.
//!
//! Given only a database [`Representative`]
//! (never the documents), each estimator predicts the usefulness pair for
//! a query `q` and threshold `T`:
//!
//! * `NoDoc(T, q, D)` — how many documents of `D` have `sim(q, d) > T`;
//! * `AvgSim(T, q, D)` — the average similarity of those documents.
//!
//! Implementations:
//!
//! * [`SubrangeEstimator`] — the paper's subrange-based statistical method
//!   (Section 3.1): per-term subrange spike factors multiplied into a
//!   probability generating function, with the singleton max-weight top
//!   subrange that makes single-term selection exact.
//! * [`BasicEstimator`] — the Proposition 1 method: one `(p, w)` spike per
//!   term (uniform-weight assumption).
//! * [`PrevMethodEstimator`] — a reconstruction of the authors' earlier
//!   VLDB'98 method: the basic factor with `(p, w)` dynamically adjusted
//!   by the threshold using the weight standard deviation.
//! * [`HighCorrelationEstimator`] / [`DisjointEstimator`] — the gGlOSS
//!   estimators under the high-correlation and disjoint assumptions.
//!
//! All estimators share the [`UsefulnessEstimator`] trait so the
//! evaluation harness and the metasearch broker are generic over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basic;
pub mod binary;
pub mod cori;
pub mod curve;
pub mod dependence;
pub mod empirical;
pub mod gloss;
pub mod guarantee;
pub mod prev;
pub mod subrange;

pub use basic::BasicEstimator;
pub use binary::BinaryIndependentEstimator;
pub use cori::{CoriCandidate, CoriRanker};
pub use curve::UsefulnessCurve;
pub use dependence::DependenceAdjustedEstimator;
pub use empirical::EmpiricalSubrangeEstimator;
pub use gloss::{DisjointEstimator, HighCorrelationEstimator};
pub use prev::PrevMethodEstimator;
pub use subrange::{Expansion, SubrangeEstimator};

use serde::{Deserialize, Serialize};
use seu_engine::Query;
use seu_repr::Representative;

/// An estimated usefulness pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Usefulness {
    /// Estimated `NoDoc(T, q, D)` (expected number of documents above the
    /// threshold; fractional before rounding).
    pub no_doc: f64,
    /// Estimated `AvgSim(T, q, D)`; 0 when `no_doc` is 0.
    pub avg_sim: f64,
}

impl Usefulness {
    /// The paper rounds estimated NoDoc to integers before computing
    /// match/mismatch; negative estimates clamp to 0.
    pub fn no_doc_rounded(&self) -> u64 {
        self.no_doc.max(0.0).round() as u64
    }

    /// Whether the estimate identifies the database as useful (rounded
    /// NoDoc at least 1).
    pub fn identifies_useful(&self) -> bool {
        self.no_doc_rounded() >= 1
    }
}

/// A method that estimates usefulness from a representative alone.
pub trait UsefulnessEstimator {
    /// Estimates `(NoDoc, AvgSim)` for `query` against the database
    /// summarized by `repr`, at similarity threshold `threshold`.
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness;

    /// Estimates at several thresholds at once. The default delegates to
    /// [`UsefulnessEstimator::estimate`]; methods whose expensive work
    /// (e.g. the generating-function expansion) is threshold-independent
    /// override this to do it once — the evaluation harness sweeps six
    /// thresholds over thousands of queries.
    fn estimate_sweep(
        &self,
        repr: &Representative,
        query: &Query,
        thresholds: &[f64],
    ) -> Vec<Usefulness> {
        thresholds
            .iter()
            .map(|&t| self.estimate(repr, query, t))
            .collect()
    }

    /// Short stable name for tables and logs.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_convention() {
        let u = Usefulness {
            no_doc: 1.2,
            avg_sim: 0.5,
        };
        assert_eq!(u.no_doc_rounded(), 1);
        assert!(u.identifies_useful());
        let v = Usefulness {
            no_doc: 0.49,
            avg_sim: 0.5,
        };
        assert_eq!(v.no_doc_rounded(), 0);
        assert!(!v.identifies_useful());
        let w = Usefulness {
            no_doc: 0.5,
            avg_sim: 0.5,
        };
        assert_eq!(w.no_doc_rounded(), 1);
        let neg = Usefulness {
            no_doc: -0.2,
            avg_sim: 0.0,
        };
        assert_eq!(neg.no_doc_rounded(), 0);
    }
}
