//! The full usefulness *curve* of a database for a query.
//!
//! One expansion of the generating function answers every threshold at
//! once: the curve is the descending-exponent suffix scan of the expanded
//! polynomial. This is what makes the paper's measure "use the number of
//! documents desired by the user" (its contrast with rank-only methods):
//! the curve inverts directly from a desired document count to the
//! similarity threshold that yields it, with no separate conversion
//! method.

use seu_poly::SparsePoly;

/// Estimated `NoDoc` / `AvgSim` as a function of the threshold, derived
/// from one expanded generating function.
#[derive(Debug, Clone, PartialEq)]
pub struct UsefulnessCurve {
    /// `(similarity, cumulative expected docs at or above it, cumulative
    /// expected similarity sum)`, sorted by descending similarity.
    points: Vec<(f64, f64, f64)>,
}

impl UsefulnessCurve {
    /// Builds the curve from an expanded generating function and the
    /// database size `n`.
    pub fn from_expansion(expansion: &SparsePoly, n_docs: u64) -> Self {
        let n = n_docs as f64;
        let mut points = Vec::with_capacity(expansion.len());
        let mut cum_docs = 0.0;
        let mut cum_sim = 0.0;
        for &(exp, coeff) in expansion.terms().iter().rev() {
            if exp <= 0.0 {
                break; // zero-similarity mass never clears any threshold
            }
            cum_docs += n * coeff;
            cum_sim += n * coeff * exp;
            points.push((exp, cum_docs, cum_sim));
        }
        UsefulnessCurve { points }
    }

    /// Estimated `NoDoc` strictly above threshold `t`.
    pub fn no_doc_above(&self, t: f64) -> f64 {
        // Points are sorted by descending similarity; find the last point
        // with similarity > t.
        match self.points.partition_point(|&(s, _, _)| s > t) {
            0 => 0.0,
            i => self.points[i - 1].1,
        }
    }

    /// Estimated `AvgSim` strictly above threshold `t` (0 when nothing
    /// clears it).
    pub fn avg_sim_above(&self, t: f64) -> f64 {
        match self.points.partition_point(|&(s, _, _)| s > t) {
            0 => 0.0,
            i => {
                let (_, docs, sim) = self.points[i - 1];
                if docs > 0.0 {
                    sim / docs
                } else {
                    0.0
                }
            }
        }
    }

    /// Inverts the curve: the highest similarity level `s` such that the
    /// estimated number of documents with similarity >= `s` reaches `k`.
    /// Any threshold strictly below the returned level yields an
    /// estimated NoDoc of at least `k`; `None` if the database is not
    /// expected to hold `k` documents at any positive similarity.
    pub fn similarity_for_count(&self, k: f64) -> Option<f64> {
        if k <= 0.0 {
            return self.points.first().map(|&(s, _, _)| s);
        }
        self.points
            .iter()
            .find(|&&(_, docs, _)| docs >= k)
            .map(|&(s, _, _)| s)
    }

    /// Total expected documents with positive similarity.
    pub fn total_docs(&self) -> f64 {
        self.points.last().map(|&(_, d, _)| d).unwrap_or(0.0)
    }

    /// The distinct similarity levels of the curve (descending).
    pub fn levels(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(s, _, _)| s)
    }

    /// Whether the curve is empty (no mass at positive similarity).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 3.2 expansion over 5 documents.
    fn example_curve() -> UsefulnessCurve {
        let g = SparsePoly::product(&[
            SparsePoly::basic_factor(0.6, 2.0),
            SparsePoly::basic_factor(0.2, 1.0),
            SparsePoly::basic_factor(0.4, 2.0),
        ]);
        UsefulnessCurve::from_expansion(&g, 5)
    }

    #[test]
    fn matches_direct_tail_computation() {
        let c = example_curve();
        // est_NoDoc(3) = 1.2, est_AvgSim(3) = 4.2 (Example 3.2).
        assert!((c.no_doc_above(3.0) - 1.2).abs() < 1e-9);
        assert!((c.avg_sim_above(3.0) - 4.2).abs() < 1e-9);
        // Zero-similarity mass (coefficient 0.192 at X^0) never counts.
        assert!((c.total_docs() - 5.0 * (1.0 - 0.192)).abs() < 1e-9);
    }

    #[test]
    fn inversion_finds_levels() {
        let c = example_curve();
        // 1.2 expected docs at similarity >= 4, 0.24 at >= 5.
        let s = c.similarity_for_count(1.0).unwrap();
        assert!((s - 4.0).abs() < 1e-9);
        // Asking for more than the database holds.
        assert!(c.similarity_for_count(10.0).is_none());
        // k = 0 returns the top level.
        assert!((c.similarity_for_count(0.0).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn inversion_is_consistent_with_no_doc() {
        let c = example_curve();
        for k in [0.5, 1.0, 2.0, 3.0] {
            if let Some(s) = c.similarity_for_count(k) {
                // Just below the level, the estimate reaches k.
                assert!(c.no_doc_above(s - 1e-9) >= k - 1e-9, "k={k}");
                // At or above it, it does not (strictly-above semantics).
                assert!(c.no_doc_above(s) < k + 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn empty_curve() {
        let c = UsefulnessCurve::from_expansion(&SparsePoly::one(), 10);
        assert!(c.is_empty());
        assert_eq!(c.no_doc_above(0.0), 0.0);
        assert_eq!(c.total_docs(), 0.0);
        assert!(c.similarity_for_count(1.0).is_none());
    }

    #[test]
    fn curve_is_monotone() {
        let c = example_curve();
        let mut prev_docs = 0.0;
        let mut prev_s = f64::INFINITY;
        for (s, d, _) in c.points.iter().copied() {
            assert!(s < prev_s);
            assert!(d >= prev_docs);
            prev_s = s;
            prev_docs = d;
        }
    }
}
