//! Dependence-adjusted subrange estimation.
//!
//! Proposition 1's term-independence assumption is the subrange method's
//! remaining approximation: when query terms co-occur (they describe one
//! subject, so they do), the independent product *under*-estimates the
//! probability that one document carries several query terms — the main
//! source of multi-term misses. The paper's related work (\[14\], Lam &
//! Yu 1982) incorporates "arbitrary term dependencies" in the binary
//! model; this estimator carries the idea into the subrange framework:
//!
//! 1. query terms are greedily matched into pairs with stored joint
//!    document frequencies ([`CooccurrenceStats`]), most-correlated pair
//!    first;
//! 2. each matched pair contributes one *joint* factor built from the
//!    exact 2×2 presence table — `P(both) = p12`,
//!    `P(only t1) = p1 − p12`, `P(only t2) = p2 − p12`,
//!    `P(neither) = 1 − p1 − p2 + p12` — with each presence case
//!    expanded through the terms' subrange spikes (weight magnitudes are
//!    assumed independent of co-presence);
//! 3. unmatched terms contribute the ordinary independent subrange
//!    factors.
//!
//! With no stored pair statistics this reduces exactly to
//! [`SubrangeEstimator`].

use crate::subrange::SubrangeEstimator;
use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_poly::SparsePoly;
use seu_repr::{CooccurrenceStats, Representative};

/// Subrange estimation with pairwise presence dependence.
#[derive(Debug, Clone)]
pub struct DependenceAdjustedEstimator {
    base: SubrangeEstimator,
    cooccur: CooccurrenceStats,
}

impl DependenceAdjustedEstimator {
    /// Wraps a subrange estimator with co-occurrence statistics.
    pub fn new(base: SubrangeEstimator, cooccur: CooccurrenceStats) -> Self {
        DependenceAdjustedEstimator { base, cooccur }
    }

    /// The underlying subrange estimator.
    pub fn base(&self) -> &SubrangeEstimator {
        &self.base
    }

    /// Greedy pairing of query-term indices by largest stored joint
    /// probability; returns (pairs, leftovers).
    fn pair_terms(&self, query: &Query) -> (Vec<(usize, usize, f64)>, Vec<usize>) {
        let terms = query.terms();
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..terms.len() {
            for j in i + 1..terms.len() {
                if let Some(p12) = self.cooccur.joint_p(terms[i].0, terms[j].0) {
                    candidates.push((i, j, p12));
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut used = vec![false; terms.len()];
        let mut pairs = Vec::new();
        for (i, j, p12) in candidates {
            if !used[i] && !used[j] {
                used[i] = true;
                used[j] = true;
                pairs.push((i, j, p12));
            }
        }
        let leftovers = (0..terms.len()).filter(|&i| !used[i]).collect();
        (pairs, leftovers)
    }

    /// Joint factor for a matched pair: the 2×2 presence table expanded
    /// through both terms' conditional subrange spikes.
    fn joint_factor(
        &self,
        repr: &Representative,
        query: &Query,
        i: usize,
        j: usize,
        p12_raw: f64,
    ) -> Option<SparsePoly> {
        let (term_i, _) = query.terms()[i];
        let (term_j, _) = query.terms()[j];
        let si = repr.get(term_i)?;
        let sj = repr.get(term_j)?;
        let (p1, p2) = (si.p, sj.p);
        // Fréchet bounds keep the table a probability distribution even
        // with quantized/merged statistics.
        let p12 = p12_raw.clamp((p1 + p2 - 1.0).max(0.0), p1.min(p2));

        // Conditional spike lists (probabilities normalized by p).
        let spikes_of =
            |idx: usize| -> Vec<(f64, f64)> { self.base.factors_for_term(repr, query, idx) };
        let a = spikes_of(i);
        let b = spikes_of(j);
        let norm = |spikes: &[(f64, f64)], p: f64| -> Vec<(f64, f64)> {
            if p <= 0.0 {
                return Vec::new();
            }
            spikes.iter().map(|&(q, e)| (q / p, e)).collect()
        };
        let ca = norm(&a, p1);
        let cb = norm(&b, p2);

        let mut terms: Vec<(f64, f64)> =
            Vec::with_capacity(ca.len() * cb.len() + ca.len() + cb.len());
        // Both present: product of conditional spike distributions.
        for &(qa, ea) in &ca {
            for &(qb, eb) in &cb {
                terms.push((p12 * qa * qb, ea + eb));
            }
        }
        // Only one present.
        for &(qa, ea) in &ca {
            terms.push(((p1 - p12) * qa, ea));
        }
        for &(qb, eb) in &cb {
            terms.push(((p2 - p12) * qb, eb));
        }
        Some(SparsePoly::spike_factor(terms))
    }
}

impl UsefulnessEstimator for DependenceAdjustedEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let (pairs, leftovers) = self.pair_terms(query);
        if pairs.is_empty() {
            return self.base.estimate(repr, query, threshold);
        }
        let mut factors: Vec<SparsePoly> = Vec::new();
        for &(i, j, p12) in &pairs {
            match self.joint_factor(repr, query, i, j, p12) {
                Some(f) => factors.push(f),
                None => {
                    // One side unknown to the representative: fall back to
                    // the independent factors for whichever sides exist.
                    for idx in [i, j] {
                        let spikes = self.base.factors_for_term(repr, query, idx);
                        if !spikes.is_empty() {
                            factors.push(SparsePoly::spike_factor(spikes));
                        }
                    }
                }
            }
        }
        for idx in leftovers {
            let spikes = self.base.factors_for_term(repr, query, idx);
            if !spikes.is_empty() {
                factors.push(SparsePoly::spike_factor(spikes));
            }
        }
        if factors.is_empty() {
            return Usefulness::default();
        }
        let g = SparsePoly::product(&factors);
        let tail = g.tail_above(threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn name(&self) -> &'static str {
        "subrange+dep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
    use seu_repr::SubrangeScheme;
    use seu_text::Analyzer;

    fn fixture() -> (seu_engine::Collection, Representative, CooccurrenceStats) {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        // "alpha beta" always co-occur; "gamma" floats freely.
        for i in 0..6 {
            b.add_document(&format!("ab{i}"), "alpha beta filler1 filler2");
        }
        for i in 0..6 {
            b.add_document(&format!("g{i}"), "gamma filler3 filler4");
        }
        let c = b.build();
        let r = Representative::build(&c);
        let stats = CooccurrenceStats::build(&c, 1000, 32);
        (c, r, stats)
    }

    #[test]
    fn reduces_to_base_without_pairs() {
        let (c, r, _) = fixture();
        let base = SubrangeEstimator::paper_six_subrange();
        let est = DependenceAdjustedEstimator::new(base.clone(), CooccurrenceStats::default());
        let q = c.query_from_text("alpha beta");
        for t in [0.1, 0.3, 0.5] {
            let a = est.estimate(&r, &q, t);
            let b = base.estimate(&r, &q, t);
            assert!((a.no_doc - b.no_doc).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn dependence_raises_conjunction_estimates() {
        let (c, r, stats) = fixture();
        let base = SubrangeEstimator::paper_six_subrange();
        let dep = DependenceAdjustedEstimator::new(base.clone(), stats);
        let q = c.query_from_text("alpha beta");
        let engine = SearchEngine::new(c.clone());
        // Pick a threshold only reachable by docs with BOTH terms.
        let t = 0.55;
        let truth = engine.true_usefulness(&q, t);
        assert!(truth.no_doc > 0, "fixture: both-term docs clear t");
        let independent = base.estimate(&r, &q, t);
        let adjusted = dep.estimate(&r, &q, t);
        // Independence multiplies p=0.5 twice (0.25); the stored joint
        // is 0.5 — the adjusted estimate must be larger and closer.
        assert!(
            adjusted.no_doc > independent.no_doc,
            "{adjusted:?} vs {independent:?}"
        );
        let err_ind = (independent.no_doc - truth.no_doc as f64).abs();
        let err_dep = (adjusted.no_doc - truth.no_doc as f64).abs();
        assert!(err_dep < err_ind, "dep {err_dep} !< ind {err_ind}");
    }

    #[test]
    fn mass_is_conserved() {
        let (c, r, stats) = fixture();
        let dep = DependenceAdjustedEstimator::new(SubrangeEstimator::paper_six_subrange(), stats);
        let q = c.query_from_text("alpha beta gamma");
        // NoDoc at threshold 0 cannot exceed n (total mass 1).
        let u = dep.estimate(&r, &q, 0.0);
        assert!(u.no_doc <= r.n_docs() as f64 + 1e-9);
        assert!(u.no_doc > 0.0);
    }

    #[test]
    fn unknown_terms_fall_back_gracefully() {
        let (c, r, stats) = fixture();
        let dep = DependenceAdjustedEstimator::new(SubrangeEstimator::paper_six_subrange(), stats);
        let q = c.query_from_text("alpha zebra");
        let u = dep.estimate(&r, &q, 0.1);
        assert!(u.no_doc > 0.0);
        assert_eq!(dep.name(), "subrange+dep");
    }

    #[test]
    fn single_subrange_joint_matches_exact_probability() {
        // With the degenerate single-subrange scheme the joint factor's
        // mass above a both-terms-only threshold is exactly p12.
        let (c, r, stats) = fixture();
        let dep = DependenceAdjustedEstimator::new(
            SubrangeEstimator::new(
                SubrangeScheme::single(),
                seu_repr::MaxWeightMode::Stored,
                crate::Expansion::Exact,
            ),
            stats,
        );
        let q = c.query_from_text("alpha beta");
        // Single-subrange: each term's spike sits at its mean weight
        // (0.5 for both, n=12, p=0.5 each, p12=0.5). The only mass above
        // the single-term level is the "both" case: 12 * 0.5 = 6 docs.
        let single_level = {
            let alpha = c.vocab().get("alpha").unwrap();
            let u_w = q.weight(alpha) * r.get(alpha).unwrap().mean;
            u_w + 1e-9
        };
        let u = dep.estimate(&r, &q, single_level);
        assert!((u.no_doc - 6.0).abs() < 1e-6, "{u:?}");
    }
}
