//! The basic generating-function method (Proposition 1).
//!
//! Each query term `t_i` with representative statistics `(p_i, w_i)`
//! contributes the factor `p_i * X^{u_i * w_i} + (1 - p_i)` (Expression
//! (7)); the expanded product's tail above `T` gives NoDoc and AvgSim
//! (Equation (6) and the AvgSim formula below it). This assumes every
//! document containing a term carries the term's *average* weight — the
//! assumption the subrange method removes.

use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_poly::SparsePoly;
use seu_repr::Representative;

/// Proposition 1 estimator (uniform average weight per term).
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicEstimator;

impl BasicEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        BasicEstimator
    }
}

impl UsefulnessEstimator for BasicEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let factors: Vec<SparsePoly> = query
            .terms()
            .iter()
            .filter_map(|&(term, u)| {
                repr.get(term)
                    .map(|s| SparsePoly::basic_factor(s.p, u * s.mean))
            })
            .collect();
        if factors.is_empty() {
            return Usefulness::default();
        }
        let g = SparsePoly::product(&factors);
        let tail = g.tail_above(threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn name(&self) -> &'static str {
        "basic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_repr::TermStats;
    use seu_text::TermId;

    /// Builds the Example 3.1 representative directly (unnormalized
    /// weights, exactly as in the paper's exposition).
    fn example_repr() -> Representative {
        let stats = vec![
            TermStats {
                p: 0.6,
                mean: 2.0,
                std_dev: 0.816,
                max: 3.0,
            },
            TermStats {
                p: 0.2,
                mean: 1.0,
                std_dev: 0.0,
                max: 1.0,
            },
            TermStats {
                p: 0.4,
                mean: 2.0,
                std_dev: 0.0,
                max: 2.0,
            },
        ];
        Representative::from_parts(5, stats, 0)
    }

    fn example_query() -> Query {
        Query::new([(TermId(0), 1.0), (TermId(1), 1.0), (TermId(2), 1.0)])
    }

    #[test]
    fn example_3_2_no_doc_and_avg_sim() {
        let est = BasicEstimator::new();
        let u = est.estimate(&example_repr(), &example_query(), 3.0);
        assert!((u.no_doc - 1.2).abs() < 1e-9, "no_doc={}", u.no_doc);
        assert!((u.avg_sim - 4.2).abs() < 1e-9, "avg_sim={}", u.avg_sim);
    }

    #[test]
    fn zero_threshold_counts_docs_with_any_term() {
        // P(at least one term) = 1 - (1-p1)(1-p2)(1-p3)
        //                      = 1 - 0.4*0.8*0.6 = 0.808.
        let est = BasicEstimator::new();
        let u = est.estimate(&example_repr(), &example_query(), 0.0);
        assert!((u.no_doc - 5.0 * 0.808).abs() < 1e-9);
    }

    #[test]
    fn unknown_terms_are_ignored() {
        let est = BasicEstimator::new();
        let q = Query::new([(TermId(0), 1.0), (TermId(99), 1.0)]);
        let u = est.estimate(&example_repr(), &q, 0.0);
        // Only term 0 contributes: 5 * 0.6 documents.
        assert!((u.no_doc - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_query_estimates_nothing() {
        let est = BasicEstimator::new();
        let u = est.estimate(&example_repr(), &Query::new([]), 0.0);
        assert_eq!(u.no_doc, 0.0);
        assert_eq!(u.avg_sim, 0.0);
    }

    #[test]
    fn threshold_above_max_sim_estimates_zero() {
        let est = BasicEstimator::new();
        // Max possible exponent: 2 + 1 + 2 = 5.
        let u = est.estimate(&example_repr(), &example_query(), 5.0);
        assert_eq!(u.no_doc, 0.0);
        assert_eq!(u.avg_sim, 0.0);
    }
}
