//! A CORI-style collection ranker (Callan, Lu & Croft, SIGIR 1995 —
//! reference \[3\] of the paper).
//!
//! CORI is the classic *rank-only* database selection method the paper
//! argues against: it scores collections by a tf·idf-like belief and is
//! blind to the similarity threshold / number of documents the user
//! wants ("a search engine will always be ranked the same regardless of
//! how many documents are desired"). It is implemented here as the
//! natural baseline for the many-database engine-ranking experiment
//! (E11) — the paper's stated future work.
//!
//! Per candidate collection `C_i` and query term `t`:
//!
//! ```text
//! T = df / (df + 50 + 150 * cw_i / avg_cw)
//! I = log((|DB| + 0.5) / cf) / log(|DB| + 1)
//! belief(t | C_i) = b + (1 - b) * T * I          (b = 0.4)
//! score(q, C_i)   = mean over query terms of belief(t | C_i)
//! ```
//!
//! `df` — document frequency of `t` in `C_i`; `cw_i` — word count of
//! `C_i`; `avg_cw` — mean word count over candidates; `|DB|` — number of
//! candidates; `cf` — number of candidates containing `t`. The
//! statistics span the whole candidate set, so CORI scores all databases
//! at once from their collections' vocabularies and representatives.

use seu_engine::Collection;
use seu_repr::Representative;

/// Default belief baseline `b` of the CORI formula.
pub const DEFAULT_BASELINE: f64 = 0.4;

/// One candidate database from CORI's point of view.
#[derive(Debug, Clone, Copy)]
pub struct CoriCandidate<'a> {
    /// The collection (for vocabulary lookups and its word count).
    pub collection: &'a Collection,
    /// Its representative (for document frequencies).
    pub repr: &'a Representative,
}

/// CORI-style collection ranker.
#[derive(Debug, Clone, Copy)]
pub struct CoriRanker {
    /// Belief baseline `b`.
    pub baseline: f64,
}

impl Default for CoriRanker {
    fn default() -> Self {
        CoriRanker {
            baseline: DEFAULT_BASELINE,
        }
    }
}

impl CoriRanker {
    /// Creates the ranker with the standard baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores every candidate for a query given as analyzed tokens.
    /// Returns one belief score per candidate (higher = rank earlier);
    /// candidates knowing none of the terms score 0.
    pub fn score_all<S: AsRef<str>>(
        &self,
        candidates: &[CoriCandidate<'_>],
        query_tokens: &[S],
    ) -> Vec<f64> {
        let n_db = candidates.len();
        if n_db == 0 || query_tokens.is_empty() {
            return vec![0.0; n_db];
        }
        let avg_cw = candidates
            .iter()
            .map(|c| c.collection.total_tokens())
            .sum::<u64>() as f64
            / n_db as f64;

        // cf per query token: candidates whose vocabulary contains it.
        let cf: Vec<f64> = query_tokens
            .iter()
            .map(|tok| {
                candidates
                    .iter()
                    .filter(|c| {
                        c.collection
                            .vocab()
                            .get(tok.as_ref())
                            .map(|id| c.repr.get(id).is_some())
                            .unwrap_or(false)
                    })
                    .count() as f64
            })
            .collect();

        candidates
            .iter()
            .map(|c| {
                let cw_ratio = c.collection.total_tokens() as f64 / avg_cw.max(1.0);
                let mut belief_sum = 0.0;
                let mut known = 0usize;
                for (tok, &cf_t) in query_tokens.iter().zip(&cf) {
                    let df = c
                        .collection
                        .vocab()
                        .get(tok.as_ref())
                        .and_then(|id| c.repr.get(id))
                        .map(|s| s.p * c.repr.n_docs() as f64)
                        .unwrap_or(0.0);
                    if df <= 0.0 {
                        continue;
                    }
                    known += 1;
                    let t_score = df / (df + 50.0 + 150.0 * cw_ratio);
                    let i_score =
                        ((n_db as f64 + 0.5) / cf_t.max(1.0)).ln() / (n_db as f64 + 1.0).ln();
                    belief_sum += self.baseline + (1.0 - self.baseline) * t_score * i_score;
                }
                if known == 0 {
                    0.0
                } else {
                    // Average over all query terms: missing terms count as
                    // zero belief, so partial matches rank below full ones.
                    belief_sum / query_tokens.len() as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection(docs: &[&str]) -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, d) in docs.iter().enumerate() {
            b.add_document(&format!("d{i}"), d);
        }
        b.build()
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn topical_database_wins() {
        let db_a = collection(&[
            "databases indexes queries",
            "databases transactions",
            "databases storage engines",
        ]);
        let db_b = collection(&["soup recipes", "bread baking", "databases of recipes"]);
        let ra = Representative::build(&db_a);
        let rb = Representative::build(&db_b);
        let cands = [
            CoriCandidate {
                collection: &db_a,
                repr: &ra,
            },
            CoriCandidate {
                collection: &db_b,
                repr: &rb,
            },
        ];
        let scores = CoriRanker::new().score_all(&cands, &toks(&["databases"]));
        assert!(scores[0] > scores[1], "{scores:?}");
        let scores2 = CoriRanker::new().score_all(&cands, &toks(&["recipes"]));
        assert!(scores2[1] > scores2[0], "{scores2:?}");
    }

    #[test]
    fn unknown_terms_score_zero() {
        let db = collection(&["alpha beta"]);
        let r = Representative::build(&db);
        let cands = [CoriCandidate {
            collection: &db,
            repr: &r,
        }];
        let scores = CoriRanker::new().score_all(&cands, &toks(&["zebra"]));
        assert_eq!(scores, vec![0.0]);
    }

    #[test]
    fn partial_match_ranks_below_full_match() {
        let full = collection(&["alpha beta", "alpha beta gamma"]);
        let partial = collection(&["alpha delta", "alpha epsilon"]);
        let rf = Representative::build(&full);
        let rp = Representative::build(&partial);
        let cands = [
            CoriCandidate {
                collection: &full,
                repr: &rf,
            },
            CoriCandidate {
                collection: &partial,
                repr: &rp,
            },
        ];
        let scores = CoriRanker::new().score_all(&cands, &toks(&["alpha", "beta"]));
        assert!(scores[0] > scores[1], "{scores:?}");
    }

    #[test]
    fn rare_terms_discriminate_more() {
        // A term in one database only (low cf) carries a higher I score
        // than a term in both.
        let a = collection(&["common rare", "common"]);
        let b = collection(&["common", "common other"]);
        let ra = Representative::build(&a);
        let rb = Representative::build(&b);
        let cands = [
            CoriCandidate {
                collection: &a,
                repr: &ra,
            },
            CoriCandidate {
                collection: &b,
                repr: &rb,
            },
        ];
        let rare = CoriRanker::new().score_all(&cands, &toks(&["rare"]));
        let common = CoriRanker::new().score_all(&cands, &toks(&["common"]));
        assert!(rare[0] > common[0], "rare={rare:?} common={common:?}");
    }

    #[test]
    fn empty_inputs() {
        assert!(CoriRanker::new().score_all(&[], &toks(&["x"])).is_empty());
        let db = collection(&["alpha"]);
        let r = Representative::build(&db);
        let cands = [CoriCandidate {
            collection: &db,
            repr: &r,
        }];
        let scores = CoriRanker::new().score_all::<String>(&cands, &[]);
        assert_eq!(scores, vec![0.0]);
    }
}
