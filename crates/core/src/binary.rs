//! The binary-and-independent baseline (Yu, Luk & Siu — reference \[18\]
//! of the paper).
//!
//! Section 2: "each document d is represented as a binary vector … the
//! occurrences of terms in different documents are assumed to be
//! independent. … A substantial amount of information will be lost when
//! documents are represented by binary vectors. As a result, it is
//! seldom used in practice." This estimator implements that model so the
//! information-loss claim can be *measured* (experiment `binary`):
//!
//! * a document is its set of distinct terms; cosine-normalizing the
//!   binary vector gives every present term the same weight
//!   `1 / sqrt(D)`, `D` = distinct terms in the document;
//! * the representative cannot know each document's `D`, so the model
//!   uses the collection average — derivable from the representative
//!   itself: `avg_D = Σ_t p_t` (each term contributes `p_t * n`
//!   presences over `n` documents);
//! * the generating function is Proposition 1's with the uniform binary
//!   weight.
//!
//! Estimates are still compared against the *true* (weighted cosine)
//! usefulness, so the gap to [`crate::BasicEstimator`] — identical
//! machinery, real average weights — isolates exactly what binarization
//! throws away.

use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_poly::SparsePoly;
use seu_repr::Representative;

/// Proposition 1 over cosine-normalized *binary* document vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryIndependentEstimator;

impl BinaryIndependentEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        BinaryIndependentEstimator
    }

    /// The model's uniform normalized weight: `1 / sqrt(avg_D)` with
    /// `avg_D = Σ_t p_t` (average distinct terms per document).
    pub fn binary_weight(repr: &Representative) -> f64 {
        let avg_d: f64 = repr.iter().map(|(_, s)| s.p).sum();
        if avg_d > 0.0 {
            1.0 / avg_d.sqrt()
        } else {
            0.0
        }
    }
}

impl UsefulnessEstimator for BinaryIndependentEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let w_bin = Self::binary_weight(repr);
        let factors: Vec<SparsePoly> = query
            .terms()
            .iter()
            .filter_map(|&(term, u)| {
                repr.get(term)
                    .map(|s| SparsePoly::basic_factor(s.p, u * w_bin))
            })
            .collect();
        if factors.is_empty() {
            return Usefulness::default();
        }
        let g = SparsePoly::product(&factors);
        let tail = g.tail_above(threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn name(&self) -> &'static str {
        "binary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_repr::TermStats;
    use seu_text::TermId;

    fn repr() -> Representative {
        // avg_D = 0.5 + 0.3 + 0.2 = 1.0 -> binary weight 1.0 (tiny docs).
        let mk = |p, mean, max| TermStats {
            p,
            mean,
            std_dev: 0.1,
            max,
        };
        Representative::from_parts(
            100,
            vec![mk(0.5, 0.4, 0.9), mk(0.3, 0.2, 0.5), mk(0.2, 0.6, 0.8)],
            0,
        )
    }

    #[test]
    fn binary_weight_from_presence_mass() {
        let r = repr();
        assert!((BinaryIndependentEstimator::binary_weight(&r) - 1.0).abs() < 1e-12);
        // A richer vocabulary lowers the uniform weight.
        let mk = |p| TermStats {
            p,
            mean: 0.1,
            std_dev: 0.0,
            max: 0.1,
        };
        let wide = Representative::from_parts(10, (0..100).map(|_| mk(0.25)).collect(), 0);
        let w = BinaryIndependentEstimator::binary_weight(&wide);
        assert!((w - 1.0 / 25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ignores_stored_weights_entirely() {
        // Two representatives differing only in weight statistics give
        // identical binary estimates — that IS the information loss.
        let r1 = repr();
        let mut stats: Vec<TermStats> = r1.iter().map(|(_, s)| *s).collect();
        for s in &mut stats {
            s.mean *= 2.0;
            s.max = 1.0;
            s.std_dev = 0.0;
        }
        let r2 = Representative::from_parts(100, stats, 0);
        let est = BinaryIndependentEstimator::new();
        let q = Query::new([(TermId(0), 1.0), (TermId(1), 1.0)]);
        for t in [0.0, 0.2, 0.5] {
            let a = est.estimate(&r1, &q, t);
            let b = est.estimate(&r2, &q, t);
            assert!((a.no_doc - b.no_doc).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn all_or_nothing_thresholding() {
        // Uniform weights mean every single-term estimate is either
        // p * n (threshold below the weight) or 0 (above).
        let r = repr();
        let est = BinaryIndependentEstimator::new();
        let q = Query::new([(TermId(0), 1.0)]);
        let below = est.estimate(&r, &q, 0.5);
        assert!((below.no_doc - 50.0).abs() < 1e-9);
        let above = est.estimate(&r, &q, 1.0);
        assert_eq!(above.no_doc, 0.0);
    }

    #[test]
    fn empty_and_unknown() {
        let r = repr();
        let est = BinaryIndependentEstimator::new();
        assert_eq!(est.estimate(&r, &Query::new([]), 0.1).no_doc, 0.0);
        let q = Query::new([(TermId(42), 1.0)]);
        assert_eq!(est.estimate(&r, &q, 0.1).no_doc, 0.0);
        assert_eq!(est.name(), "binary");
    }
}
