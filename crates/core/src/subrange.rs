//! The subrange-based estimator — the paper's primary contribution.
//!
//! For each query term, the term's `(p, w, sigma, mw)` statistics are
//! decomposed by a [`SubrangeScheme`] into probability spikes at subrange
//! median weights (Expression (8)); the spikes become a factor polynomial
//! whose exponents are the weights scaled by the query term weight `u`.
//! The expanded product of the factors is the generating function; its
//! tail above the threshold yields `est_NoDoc` and `est_AvgSim`.
//!
//! With the paper's six-subrange scheme the highest subrange holds only
//! the maximum normalized weight with probability `1/n`, which guarantees
//! correct engine identification for single-term queries (see the
//! [`crate::guarantee`] module).

use crate::{Usefulness, UsefulnessEstimator};
use serde::{Deserialize, Serialize};
use seu_engine::Query;
use seu_poly::TailStats;
use seu_poly::{GridPoly, SparsePoly};
use seu_repr::{MaxWeightMode, Representative, SubrangeScheme};
use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process. The `raw` count is the
/// unmerged expansion size (product of per-factor spike counts); the
/// difference to the stored term count is what epsilon merging pruned.
struct EstimatorMetrics {
    invocations: Arc<seu_obs::Counter>,
    sweeps: Arc<seu_obs::Counter>,
    expansions: Arc<seu_obs::Counter>,
    terms_raw: Arc<seu_obs::Counter>,
    terms_expanded: Arc<seu_obs::Counter>,
    terms_pruned: Arc<seu_obs::Counter>,
    expansion_size: Arc<seu_obs::Histogram>,
    expansion_seconds: Arc<seu_obs::Histogram>,
    grid_cells: Arc<seu_obs::Counter>,
}

fn metrics() -> &'static EstimatorMetrics {
    static METRICS: OnceLock<EstimatorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EstimatorMetrics {
        invocations: seu_obs::counter("estimator_subrange_invocations_total"),
        sweeps: seu_obs::counter("estimator_subrange_sweeps_total"),
        expansions: seu_obs::counter("estimator_poly_expansions_total"),
        terms_raw: seu_obs::counter("estimator_poly_terms_raw_total"),
        terms_expanded: seu_obs::counter("estimator_poly_terms_expanded_total"),
        terms_pruned: seu_obs::counter("estimator_poly_terms_pruned_total"),
        expansion_size: seu_obs::histogram_with_buckets(
            "estimator_poly_expansion_terms",
            &seu_obs::SIZE_BUCKETS,
        ),
        expansion_seconds: seu_obs::histogram("estimator_expansion_seconds"),
        grid_cells: seu_obs::counter("estimator_grid_cells_convolved_total"),
    })
}

/// Forces creation of the estimator's instruments so snapshots and
/// expositions include the whole `estimator_*` family — zero-valued if
/// the process never estimated — instead of a family that appears only
/// after the first call touches it.
pub fn register_metrics() {
    let _ = metrics();
}

/// How the generating function is expanded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Expansion {
    /// Exact sparse expansion with epsilon exponent merging. Exponential
    /// in query length in the worst case, but exact; fine for the short
    /// (<= 6 term) queries of the Internet workloads the paper targets.
    #[default]
    Exact,
    /// Dense grid convolution with the given number of cells over
    /// `[0, max exponent]` — `O(r * k * cells)` for any query length,
    /// with tail mass rounded conservatively down.
    Grid {
        /// Number of grid cells.
        cells: usize,
    },
}

/// The subrange-based usefulness estimator.
///
/// # Examples
///
/// ```
/// use seu_core::{SubrangeEstimator, UsefulnessEstimator};
/// use seu_engine::Query;
/// use seu_repr::{Representative, TermStats};
/// use seu_text::TermId;
///
/// // A 100-document database where one term appears in 30 % of
/// // documents with mean normalized weight 0.3 (sd 0.1, max 0.9).
/// let repr = Representative::from_parts(
///     100,
///     vec![TermStats { p: 0.3, mean: 0.3, std_dev: 0.1, max: 0.9 }],
///     0,
/// );
/// let est = SubrangeEstimator::paper_six_subrange();
/// let query = Query::new([(TermId(0), 1.0)]);
///
/// // Plenty of documents above a low threshold...
/// assert!(est.estimate(&repr, &query, 0.1).no_doc > 10.0);
/// // ...only the max-weight document above a high one (the singleton
/// // top subrange at probability 1/n)...
/// let high = est.estimate(&repr, &query, 0.8);
/// assert!((high.no_doc - 1.0).abs() < 1e-9);
/// // ...and nothing above the maximum normalized weight.
/// assert_eq!(est.estimate(&repr, &query, 0.95).no_doc, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SubrangeEstimator {
    scheme: SubrangeScheme,
    max_mode: MaxWeightMode,
    expansion: Expansion,
}

impl SubrangeEstimator {
    /// Full configuration.
    pub fn new(scheme: SubrangeScheme, max_mode: MaxWeightMode, expansion: Expansion) -> Self {
        SubrangeEstimator {
            scheme,
            max_mode,
            expansion,
        }
    }

    /// The paper's experimental configuration: six subranges with the
    /// stored maximum normalized weight as singleton top subrange, exact
    /// expansion (Tables 1–6).
    pub fn paper_six_subrange() -> Self {
        Self::new(
            SubrangeScheme::paper_six(),
            MaxWeightMode::Stored,
            Expansion::Exact,
        )
    }

    /// The Tables 10–12 configuration: max weight not stored but estimated
    /// as the 99.9 percentile from `(w, sigma)` (triplet representative).
    pub fn paper_triplet() -> Self {
        Self::new(
            SubrangeScheme::paper_six(),
            MaxWeightMode::estimated_999(),
            Expansion::Exact,
        )
    }

    /// The subrange scheme in use.
    pub fn scheme(&self) -> &SubrangeScheme {
        &self.scheme
    }

    /// The max-weight mode in use.
    pub fn max_mode(&self) -> MaxWeightMode {
        self.max_mode
    }

    /// Per-term spike factors `(probability, exponent)` for a query —
    /// exposed for the guarantee analysis and for tests.
    pub fn factors(&self, repr: &Representative, query: &Query) -> Vec<Vec<(f64, f64)>> {
        query
            .terms()
            .iter()
            .filter_map(|&(term, u)| {
                repr.get(term).map(|s| {
                    self.scheme
                        .decompose(s, repr.n_docs(), self.max_mode)
                        .into_iter()
                        .map(|(p, w)| (p, u * w))
                        .collect()
                })
            })
            .collect()
    }

    /// The spike factor `(probability, exponent)` list for the `idx`-th
    /// query term alone (empty if the term is unknown to the
    /// representative). Used by the dependence-adjusted estimator to
    /// build joint pair factors from the same subrange decomposition.
    pub fn factors_for_term(
        &self,
        repr: &Representative,
        query: &Query,
        idx: usize,
    ) -> Vec<(f64, f64)> {
        let (term, u) = query.terms()[idx];
        repr.get(term)
            .map(|s| {
                self.scheme
                    .decompose(s, repr.n_docs(), self.max_mode)
                    .into_iter()
                    .map(|(p, w)| (p, u * w))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Computes the full [`UsefulnessCurve`](crate::curve::UsefulnessCurve)
    /// for a query with one exact expansion — every threshold and the
    /// count→threshold inversion come for free afterwards (the paper's
    /// point that its measure adapts to "the number of documents desired
    /// by the user").
    pub fn curve(&self, repr: &Representative, query: &Query) -> crate::curve::UsefulnessCurve {
        let factors = self.factors(repr, query);
        let g = if factors.is_empty() {
            SparsePoly::one()
        } else {
            self.expand_exact(&factors)
        };
        crate::curve::UsefulnessCurve::from_expansion(&g, repr.n_docs())
    }

    /// Expands the product of spike factors exactly, recording the
    /// polynomial-size and timing metrics for the expansion.
    fn expand_exact(&self, factors: &[Vec<(f64, f64)>]) -> SparsePoly {
        let m = metrics();
        let timer = m.expansion_seconds.start_timer();
        let polys: Vec<SparsePoly> = factors
            .iter()
            .map(|spikes| SparsePoly::spike_factor(spikes.iter().map(|&(p, e)| (p, e))))
            .collect();
        let g = SparsePoly::product(&polys);
        timer.stop();
        let raw: u64 = polys
            .iter()
            .fold(1u64, |acc, p| acc.saturating_mul(p.len().max(1) as u64));
        let expanded = g.len() as u64;
        m.expansions.inc();
        m.terms_raw.add(raw);
        m.terms_expanded.add(expanded);
        m.terms_pruned.add(raw.saturating_sub(expanded));
        m.expansion_size.observe(expanded as f64);
        g
    }

    fn tail(&self, factors: &[Vec<(f64, f64)>], threshold: f64) -> TailStats {
        match self.expansion {
            Expansion::Exact => self.expand_exact(factors).tail_above(threshold),
            Expansion::Grid { cells } => {
                let max_exp: f64 = factors
                    .iter()
                    .map(|spikes| spikes.iter().map(|&(_, e)| e).fold(0.0f64, f64::max))
                    .sum();
                if max_exp <= 0.0 {
                    return TailStats::default();
                }
                let m = metrics();
                let timer = m.expansion_seconds.start_timer();
                let mut g = GridPoly::identity(max_exp, cells);
                for spikes in factors {
                    g.convolve_spikes(spikes);
                }
                let tail = g.tail_above(threshold);
                timer.stop();
                m.expansions.inc();
                m.grid_cells
                    .add((cells as u64).saturating_mul(factors.len() as u64));
                tail
            }
        }
    }
}

impl UsefulnessEstimator for SubrangeEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        metrics().invocations.inc();
        let factors = self.factors(repr, query);
        if factors.is_empty() {
            return Usefulness::default();
        }
        let tail = self.tail(&factors, threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn estimate_sweep(
        &self,
        repr: &Representative,
        query: &Query,
        thresholds: &[f64],
    ) -> Vec<Usefulness> {
        metrics().sweeps.inc();
        let factors = self.factors(repr, query);
        if factors.is_empty() {
            return vec![Usefulness::default(); thresholds.len()];
        }
        // The expansion does not depend on the threshold: do it once.
        match self.expansion {
            Expansion::Exact => {
                let g = self.expand_exact(&factors);
                thresholds
                    .iter()
                    .map(|&t| {
                        let tail = g.tail_above(t);
                        Usefulness {
                            no_doc: repr.n_docs() as f64 * tail.mass,
                            avg_sim: tail.avg_exponent(),
                        }
                    })
                    .collect()
            }
            Expansion::Grid { .. } => thresholds
                .iter()
                .map(|&t| {
                    let tail = self.tail(&factors, t);
                    Usefulness {
                        no_doc: repr.n_docs() as f64 * tail.mass,
                        avg_sim: tail.avg_exponent(),
                    }
                })
                .collect(),
        }
    }

    fn name(&self) -> &'static str {
        match self.max_mode {
            MaxWeightMode::Stored => "subrange",
            MaxWeightMode::Estimated { .. } => "subrange-triplet",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_repr::TermStats;
    use seu_text::TermId;

    fn repr_one_term(n: u64, p: f64, mean: f64, sd: f64, max: f64) -> Representative {
        Representative::from_parts(
            n,
            vec![TermStats {
                p,
                mean,
                std_dev: sd,
                max,
            }],
            0,
        )
    }

    fn single_query() -> Query {
        Query::new([(TermId(0), 1.0)])
    }

    #[test]
    fn single_term_max_weight_selection() {
        // Section 3.1's argument: threshold between a database's max
        // weight and everything else selects exactly that database.
        let est = SubrangeEstimator::paper_six_subrange();
        let d1 = repr_one_term(100, 0.3, 0.4, 0.1, 0.9);
        let d2 = repr_one_term(100, 0.3, 0.4, 0.1, 0.7);
        let t = 0.8; // mw1 > t > mw2
        let u1 = est.estimate(&d1, &single_query(), t);
        let u2 = est.estimate(&d2, &single_query(), t);
        // D1's top subrange clears the threshold: at least p_top * n = 1.
        assert!(u1.no_doc >= 1.0 - 1e-9, "u1={:?}", u1);
        assert_eq!(u2.no_doc_rounded(), 0, "u2={:?}", u2);
    }

    #[test]
    fn mass_conservation_no_doc_at_most_n() {
        let est = SubrangeEstimator::paper_six_subrange();
        let r = repr_one_term(50, 0.8, 0.3, 0.2, 0.95);
        for t in [0.0, 0.1, 0.3, 0.5, 0.9] {
            let u = est.estimate(&r, &single_query(), t);
            assert!(u.no_doc <= 50.0 + 1e-9, "t={t}");
            assert!(u.no_doc >= 0.0);
        }
    }

    #[test]
    fn no_doc_monotone_decreasing_in_threshold() {
        let est = SubrangeEstimator::paper_six_subrange();
        let r = repr_one_term(50, 0.8, 0.3, 0.2, 0.95);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let t = i as f64 * 0.05;
            let u = est.estimate(&r, &single_query(), t);
            assert!(u.no_doc <= prev + 1e-12, "t={t}");
            prev = u.no_doc;
        }
    }

    #[test]
    fn avg_sim_above_threshold_when_nonzero() {
        let est = SubrangeEstimator::paper_six_subrange();
        let r = repr_one_term(50, 0.8, 0.3, 0.2, 0.95);
        for t in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let u = est.estimate(&r, &single_query(), t);
            if u.no_doc > 0.0 {
                assert!(u.avg_sim > t, "t={t} avg={}", u.avg_sim);
                assert!(u.avg_sim <= 0.95 + 1e-9);
            }
        }
    }

    #[test]
    fn grid_expansion_close_to_exact() {
        let exact = SubrangeEstimator::paper_six_subrange();
        let grid = SubrangeEstimator::new(
            SubrangeScheme::paper_six(),
            MaxWeightMode::Stored,
            Expansion::Grid { cells: 4096 },
        );
        let stats: Vec<TermStats> = (0..4)
            .map(|i| TermStats {
                p: 0.2 + 0.1 * i as f64,
                mean: 0.15 + 0.05 * i as f64,
                std_dev: 0.05,
                max: 0.5 + 0.1 * i as f64,
            })
            .collect();
        let r = Representative::from_parts(200, stats, 0);
        let q = Query::new((0..4).map(|i| (TermId(i), 0.5)));
        for t in [0.1, 0.2, 0.3] {
            let a = exact.estimate(&r, &q, t);
            let b = grid.estimate(&r, &q, t);
            // Grid rounds down, so b <= a; the gap shrinks with cells.
            assert!(b.no_doc <= a.no_doc + 1e-9, "t={t}");
            assert!((a.no_doc - b.no_doc) < 0.05 * a.no_doc.max(1.0), "t={t}");
        }
    }

    #[test]
    fn triplet_mode_ignores_stored_max() {
        let est = SubrangeEstimator::paper_triplet();
        // Stored max is huge but (mean, sigma) are small: the triplet
        // estimate should not see the stored max.
        let r = repr_one_term(100, 0.3, 0.2, 0.01, 0.99);
        let u = est.estimate(&r, &single_query(), 0.5);
        assert_eq!(u.no_doc_rounded(), 0);
        // The stored-max estimator does see it.
        let est2 = SubrangeEstimator::paper_six_subrange();
        let u2 = est2.estimate(&r, &single_query(), 0.5);
        assert!(u2.no_doc > 0.9);
    }

    #[test]
    fn empty_query_or_unknown_terms() {
        let est = SubrangeEstimator::paper_six_subrange();
        let r = repr_one_term(100, 0.3, 0.2, 0.01, 0.9);
        assert_eq!(est.estimate(&r, &Query::new([]), 0.1).no_doc, 0.0);
        let q = Query::new([(TermId(7), 1.0)]);
        assert_eq!(est.estimate(&r, &q, 0.1).no_doc, 0.0);
    }

    #[test]
    fn curve_agrees_with_estimate() {
        let est = SubrangeEstimator::paper_six_subrange();
        let r = repr_one_term(100, 0.4, 0.3, 0.1, 0.85);
        let q = single_query();
        let curve = est.curve(&r, &q);
        for t in [0.0, 0.1, 0.25, 0.4, 0.6, 0.8, 0.9] {
            let u = est.estimate(&r, &q, t);
            assert!(
                (curve.no_doc_above(t) - u.no_doc).abs() < 1e-9,
                "t={t}: {} vs {}",
                curve.no_doc_above(t),
                u.no_doc
            );
            assert!((curve.avg_sim_above(t) - u.avg_sim).abs() < 1e-9, "t={t}");
        }
        // Inversion round-trips: the level for k docs yields >= k just
        // below it.
        let k = 5.0;
        if let Some(s) = curve.similarity_for_count(k) {
            assert!(est.estimate(&r, &q, s - 1e-9).no_doc >= k - 1e-9);
        }
    }

    #[test]
    fn names() {
        assert_eq!(SubrangeEstimator::paper_six_subrange().name(), "subrange");
        assert_eq!(
            SubrangeEstimator::paper_triplet().name(),
            "subrange-triplet"
        );
    }
}
