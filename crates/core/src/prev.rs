//! Reconstruction of the authors' previous method (Meng et al., VLDB
//! 1998 — reference \[15\] of the paper).
//!
//! The ICDE'99 paper describes it as "similar to the basic method … except
//! that it also utilizes the standard deviation of the weights of each
//! term … to *dynamically adjust the average weight and probability of
//! each query term according to the threshold* used for the query". The
//! exact formulas are in the earlier paper, which this reproduction does
//! not include; the reconstruction below is faithful to that description
//! and reduces exactly to the basic method at `T = 0`:
//!
//! 1. the threshold is apportioned to the query terms in proportion to
//!    their expected similarity contribution: term `i`'s share is
//!    `c_i = T * (u_i w_i) / Σ_j u_j w_j`, i.e. a weight cutoff
//!    `wc_i = c_i / u_i = T * w_i / Σ_j u_j w_j`;
//! 2. modelling the term's weight among containing documents as
//!    `N(w_i, sigma_i^2)`, the adjusted probability is
//!    `p_i' = p_i * P(W > wc_i)` and the adjusted weight is the
//!    conditional mean `w_i' = E[W | W > wc_i]`;
//! 3. the basic factor `p' X^{u w'} + (1 - p')` is used in the generating
//!    function.
//!
//! Larger thresholds therefore shift each term's single spike toward its
//! upper weight tail — the published behaviour — while still ignoring the
//! maximum normalized weight, which is why the subrange method beats it
//! (Tables 1–6) and why it beats the high-correlation baseline.

use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_poly::SparsePoly;
use seu_repr::Representative;
use seu_stats::{truncated_mean, upper_tail};

/// The VLDB'98-style dynamically-adjusted estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrevMethodEstimator;

impl PrevMethodEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        PrevMethodEstimator
    }
}

impl UsefulnessEstimator for PrevMethodEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        // Expected similarity contribution per known term.
        let known: Vec<(f64, &seu_repr::TermStats)> = query
            .terms()
            .iter()
            .filter_map(|&(term, u)| repr.get(term).map(|s| (u, s)))
            .collect();
        if known.is_empty() {
            return Usefulness::default();
        }
        let total_contrib: f64 = known.iter().map(|&(u, s)| u * s.mean).sum();

        let factors: Vec<SparsePoly> = known
            .iter()
            .map(|&(u, s)| {
                let wc = if total_contrib > 0.0 && threshold > 0.0 {
                    threshold * s.mean / total_contrib
                } else {
                    0.0
                };
                let (p_adj, w_adj) = if wc <= 0.0 || s.std_dev <= 0.0 {
                    // No adjustment possible or needed: the basic factor.
                    // With sigma = 0 all weights equal the mean; the term
                    // clears its cutoff iff mean > wc.
                    if s.std_dev <= 0.0 && s.mean <= wc {
                        (0.0, s.mean)
                    } else {
                        (s.p, s.mean)
                    }
                } else {
                    let z = (wc - s.mean) / s.std_dev;
                    (s.p * upper_tail(z), truncated_mean(s.mean, s.std_dev, wc))
                };
                SparsePoly::basic_factor(p_adj.clamp(0.0, 1.0), u * w_adj)
            })
            .collect();
        let g = SparsePoly::product(&factors);
        let tail = g.tail_above(threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn name(&self) -> &'static str {
        "prev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicEstimator;
    use seu_repr::TermStats;
    use seu_text::TermId;

    fn repr() -> Representative {
        Representative::from_parts(
            100,
            vec![
                TermStats {
                    p: 0.4,
                    mean: 0.3,
                    std_dev: 0.15,
                    max: 0.8,
                },
                TermStats {
                    p: 0.2,
                    mean: 0.5,
                    std_dev: 0.2,
                    max: 0.9,
                },
            ],
            0,
        )
    }

    #[test]
    fn reduces_to_basic_at_zero_threshold() {
        let q = Query::new([(TermId(0), 0.7), (TermId(1), 0.7)]);
        let a = PrevMethodEstimator::new().estimate(&repr(), &q, 0.0);
        let b = BasicEstimator::new().estimate(&repr(), &q, 0.0);
        assert!((a.no_doc - b.no_doc).abs() < 1e-9);
        assert!((a.avg_sim - b.avg_sim).abs() < 1e-9);
    }

    #[test]
    fn adjustment_shifts_weight_upward() {
        // At a high threshold the single-term spike should sit above the
        // mean (conditional mean of the upper tail).
        let q = Query::new([(TermId(0), 1.0)]);
        let r = repr();
        let hi = PrevMethodEstimator::new().estimate(&r, &q, 0.35);
        // Basic method at T = 0.35: spike at mean 0.3 < 0.35 -> zero.
        let basic = BasicEstimator::new().estimate(&r, &q, 0.35);
        assert_eq!(basic.no_doc, 0.0);
        // Adjusted method keeps tail mass above the threshold.
        assert!(hi.no_doc > 0.0, "hi={hi:?}");
        assert!(hi.avg_sim > 0.35);
    }

    #[test]
    fn adjusted_probability_never_exceeds_p() {
        let q = Query::new([(TermId(0), 1.0)]);
        let r = repr();
        for t in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
            let u = PrevMethodEstimator::new().estimate(&r, &q, t);
            // p = 0.4, n = 100 -> at most 40 expected documents.
            assert!(u.no_doc <= 40.0 + 1e-9, "t={t}");
        }
    }

    #[test]
    fn sigma_zero_behaves_deterministically() {
        let r = Representative::from_parts(
            10,
            vec![TermStats {
                p: 0.5,
                mean: 0.4,
                std_dev: 0.0,
                max: 0.4,
            }],
            0,
        );
        let q = Query::new([(TermId(0), 1.0)]);
        let below = PrevMethodEstimator::new().estimate(&r, &q, 0.3);
        assert!((below.no_doc - 5.0).abs() < 1e-9);
        let above = PrevMethodEstimator::new().estimate(&r, &q, 0.45);
        assert_eq!(above.no_doc, 0.0);
    }

    #[test]
    fn empty_query() {
        let u = PrevMethodEstimator::new().estimate(&repr(), &Query::new([]), 0.2);
        assert_eq!(u.no_doc, 0.0);
    }
}
