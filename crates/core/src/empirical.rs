//! Subrange estimation with *exact* stored medians — the expensive
//! variant the paper's normal approximation stands in for.
//!
//! Identical to [`SubrangeEstimator`](crate::SubrangeEstimator) except each non-top subrange's
//! weight is the term's true empirical percentile (from a
//! [`PercentileRepresentative`]) rather than `w + z(q) * sigma`.
//! Experiment E20 compares the two to price the normal assumption.

use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_poly::SparsePoly;
use seu_repr::{PercentileRepresentative, Representative};

/// Subrange estimator over stored exact percentile medians.
#[derive(Debug, Clone)]
pub struct EmpiricalSubrangeEstimator {
    percentiles: PercentileRepresentative,
}

impl EmpiricalSubrangeEstimator {
    /// Wraps a percentile table (which fixes the subrange scheme).
    pub fn new(percentiles: PercentileRepresentative) -> Self {
        EmpiricalSubrangeEstimator { percentiles }
    }

    fn factors(&self, repr: &Representative, query: &Query) -> Vec<SparsePoly> {
        query
            .terms()
            .iter()
            .filter_map(|&(term, u)| {
                let spikes = self.percentiles.decompose(repr, term);
                if spikes.is_empty() {
                    None
                } else {
                    Some(SparsePoly::spike_factor(
                        spikes.into_iter().map(|(p, w)| (p, u * w)),
                    ))
                }
            })
            .collect()
    }
}

impl UsefulnessEstimator for EmpiricalSubrangeEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let factors = self.factors(repr, query);
        if factors.is_empty() {
            return Usefulness::default();
        }
        let tail = SparsePoly::product(&factors).tail_above(threshold);
        Usefulness {
            no_doc: repr.n_docs() as f64 * tail.mass,
            avg_sim: tail.avg_exponent(),
        }
    }

    fn estimate_sweep(
        &self,
        repr: &Representative,
        query: &Query,
        thresholds: &[f64],
    ) -> Vec<Usefulness> {
        let factors = self.factors(repr, query);
        if factors.is_empty() {
            return vec![Usefulness::default(); thresholds.len()];
        }
        let g = SparsePoly::product(&factors);
        thresholds
            .iter()
            .map(|&t| {
                let tail = g.tail_above(t);
                Usefulness {
                    no_doc: repr.n_docs() as f64 * tail.mass,
                    avg_sim: tail.avg_exponent(),
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "subrange-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
    use seu_repr::SubrangeScheme;
    use seu_text::Analyzer;

    fn fixture() -> (
        seu_engine::Collection,
        Representative,
        EmpiricalSubrangeEstimator,
    ) {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        // Heavily right-skewed weights for "hot": mostly minor mentions,
        // one document all about it.
        b.add_document("d0", "hot");
        for i in 1..12 {
            b.add_document(
                &format!("d{i}"),
                "hot filler1 filler2 filler3 filler4 filler5 filler6 filler7",
            );
        }
        let c = b.build();
        let r = Representative::build(&c);
        let est = EmpiricalSubrangeEstimator::new(PercentileRepresentative::build(
            &c,
            SubrangeScheme::paper_six(),
        ));
        (c, r, est)
    }

    #[test]
    fn single_term_guarantee_still_holds() {
        let (c, r, est) = fixture();
        let engine = SearchEngine::new(c.clone());
        let q = c.query_from_text("hot");
        for t in [0.1, 0.3, 0.5, 0.9, 0.99] {
            let predicted = est.estimate(&r, &q, t).no_doc > 0.0;
            let truly = engine.true_usefulness(&q, t).no_doc >= 1;
            assert_eq!(predicted, truly, "t={t}");
        }
    }

    #[test]
    fn estimates_bounded_and_monotone() {
        let (c, r, est) = fixture();
        let q = c.query_from_text("hot filler1");
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let u = est.estimate(&r, &q, t);
            assert!(u.no_doc >= 0.0 && u.no_doc <= c.len() as f64 + 1e-9);
            assert!(u.no_doc <= prev + 1e-9);
            prev = u.no_doc;
        }
    }

    #[test]
    fn sweep_matches_pointwise() {
        let (c, r, est) = fixture();
        let q = c.query_from_text("hot filler2");
        let ts = [0.05, 0.2, 0.4];
        let sweep = est.estimate_sweep(&r, &q, &ts);
        for (i, &t) in ts.iter().enumerate() {
            let single = est.estimate(&r, &q, t);
            assert!((sweep[i].no_doc - single.no_doc).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_medians_beat_normal_on_skewed_weights() {
        // On this skewed fixture, the exact-percentile estimator should be
        // at least as accurate as the normal approximation at a mid
        // threshold where the skew matters.
        let (c, r, exact) = fixture();
        let normal = crate::SubrangeEstimator::paper_six_subrange();
        let engine = SearchEngine::new(c.clone());
        let q = c.query_from_text("hot");
        // The minor-mention weight is 1/sqrt(1 + 7) ~ 0.35; pick the
        // threshold just below it: truth counts all 12 docs.
        let t = 0.3;
        let truth = engine.true_usefulness(&q, t).no_doc as f64;
        let e_exact = (exact.estimate(&r, &q, t).no_doc - truth).abs();
        let e_normal = (normal.estimate(&r, &q, t).no_doc - truth).abs();
        assert!(
            e_exact <= e_normal + 1e-9,
            "exact {e_exact} vs normal {e_normal} (truth {truth})"
        );
    }

    #[test]
    fn empty_query() {
        let (_, r, est) = fixture();
        let u = est.estimate(&r, &seu_engine::Query::new([]), 0.2);
        assert_eq!(u.no_doc, 0.0);
        assert_eq!(est.name(), "subrange-exact");
    }
}
