//! The gGlOSS baselines (Gravano & Garcia-Molina) under the
//! high-correlation and disjoint assumptions.
//!
//! Both estimate from `(df_i, w_i)` per query term — document frequency
//! (`p_i * n`) and average weight — by postulating an extreme document
//! layout:
//!
//! * **high-correlation**: if term `j` appears in at least as many
//!   documents as term `k`, every document containing `k` also contains
//!   `j`. Sorting the query terms by descending `df`, the `df_r` rarest
//!   documents contain *all* terms, and `df_i - df_{i+1}` documents
//!   contain exactly terms `1..=i`, scoring `Σ_{j<=i} u_j w_j`.
//! * **disjoint**: no document contains two query terms; `df_i` documents
//!   score `u_i w_i` each.
//!
//! The paper reports only the high-correlation variant in its tables
//! (citing \[15\] for the disjoint case underperforming); both are
//! implemented here, disjoint feeding the `ablation-disjoint` experiment.

use crate::{Usefulness, UsefulnessEstimator};
use seu_engine::Query;
use seu_repr::Representative;

/// Sorted `(df, u * w)` pairs for the query terms known to the
/// representative, by descending document frequency.
fn term_contributions(repr: &Representative, query: &Query) -> Vec<(f64, f64)> {
    let n = repr.n_docs() as f64;
    let mut v: Vec<(f64, f64)> = query
        .terms()
        .iter()
        .filter_map(|&(term, u)| repr.get(term).map(|s| (s.p * n, u * s.mean)))
        .collect();
    v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// gGlOSS high-correlation estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct HighCorrelationEstimator;

impl HighCorrelationEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        HighCorrelationEstimator
    }
}

impl UsefulnessEstimator for HighCorrelationEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let terms = term_contributions(repr, query);
        if terms.is_empty() {
            return Usefulness::default();
        }
        // Bucket i (1-based): df_i - df_{i+1} documents containing exactly
        // terms 1..=i, with similarity prefix_sum(i).
        let mut no_doc = 0.0;
        let mut sim_sum = 0.0;
        let mut prefix = 0.0;
        for i in 0..terms.len() {
            prefix += terms[i].1;
            let df_next = if i + 1 < terms.len() {
                terms[i + 1].0
            } else {
                0.0
            };
            let count = (terms[i].0 - df_next).max(0.0);
            if prefix > threshold {
                no_doc += count;
                sim_sum += count * prefix;
            }
        }
        Usefulness {
            no_doc,
            avg_sim: if no_doc > 0.0 { sim_sum / no_doc } else { 0.0 },
        }
    }

    fn name(&self) -> &'static str {
        "high-correlation"
    }
}

/// gGlOSS disjoint estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct DisjointEstimator;

impl DisjointEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        DisjointEstimator
    }
}

impl UsefulnessEstimator for DisjointEstimator {
    fn estimate(&self, repr: &Representative, query: &Query, threshold: f64) -> Usefulness {
        let n = repr.n_docs() as f64;
        let mut no_doc = 0.0;
        let mut sim_sum = 0.0;
        for &(term, u) in query.terms() {
            if let Some(s) = repr.get(term) {
                let sim = u * s.mean;
                if sim > threshold {
                    let df = s.p * n;
                    no_doc += df;
                    sim_sum += df * sim;
                }
            }
        }
        // The disjoint layout can claim more documents than exist when
        // term document-frequencies overlap heavily; clamp to n.
        let clamped = no_doc.min(n);
        Usefulness {
            no_doc: clamped,
            avg_sim: if no_doc > 0.0 { sim_sum / no_doc } else { 0.0 },
        }
    }

    fn name(&self) -> &'static str {
        "disjoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_repr::TermStats;
    use seu_text::TermId;

    /// Three terms with df 50, 30, 10 over n = 100 and mean weights
    /// 0.2, 0.3, 0.4.
    fn repr() -> Representative {
        let mk = |p, mean| TermStats {
            p,
            mean,
            std_dev: 0.0,
            max: mean,
        };
        Representative::from_parts(100, vec![mk(0.5, 0.2), mk(0.3, 0.3), mk(0.1, 0.4)], 0)
    }

    fn query() -> Query {
        Query::new([(TermId(0), 1.0), (TermId(1), 1.0), (TermId(2), 1.0)])
    }

    #[test]
    fn high_correlation_buckets() {
        // Sorted by df: t0 (50, 0.2), t1 (30, 0.3), t2 (10, 0.4).
        // Buckets: 20 docs at sim 0.2; 20 docs at 0.5; 10 docs at 0.9.
        let est = HighCorrelationEstimator::new();
        let u = est.estimate(&repr(), &query(), 0.0);
        assert!((u.no_doc - 50.0).abs() < 1e-9);
        let expect_avg = (20.0 * 0.2 + 20.0 * 0.5 + 10.0 * 0.9) / 50.0;
        assert!((u.avg_sim - expect_avg).abs() < 1e-9);

        let u2 = est.estimate(&repr(), &query(), 0.45);
        assert!((u2.no_doc - 30.0).abs() < 1e-9);
        let u3 = est.estimate(&repr(), &query(), 0.85);
        assert!((u3.no_doc - 10.0).abs() < 1e-9);
        assert!((u3.avg_sim - 0.9).abs() < 1e-9);
        let u4 = est.estimate(&repr(), &query(), 0.95);
        assert_eq!(u4.no_doc, 0.0);
    }

    #[test]
    fn disjoint_sums_dfs() {
        let est = DisjointEstimator::new();
        // T = 0: all three terms clear: 50 + 30 + 10 = 90 docs.
        let u = est.estimate(&repr(), &query(), 0.0);
        assert!((u.no_doc - 90.0).abs() < 1e-9);
        // T = 0.25: only t1 (0.3) and t2 (0.4): 40 docs.
        let u2 = est.estimate(&repr(), &query(), 0.25);
        assert!((u2.no_doc - 40.0).abs() < 1e-9);
        let expect_avg = (30.0 * 0.3 + 10.0 * 0.4) / 40.0;
        assert!((u2.avg_sim - expect_avg).abs() < 1e-9);
        // T = 0.45: nothing.
        assert_eq!(est.estimate(&repr(), &query(), 0.45).no_doc, 0.0);
    }

    #[test]
    fn disjoint_clamps_to_collection_size() {
        let mk = |p, mean| TermStats {
            p,
            mean,
            std_dev: 0.0,
            max: mean,
        };
        let r = Representative::from_parts(10, vec![mk(0.9, 0.5), mk(0.8, 0.5)], 0);
        let q = Query::new([(TermId(0), 1.0), (TermId(1), 1.0)]);
        let u = DisjointEstimator::new().estimate(&r, &q, 0.1);
        assert!(u.no_doc <= 10.0);
    }

    #[test]
    fn high_correlation_single_term_is_df_threshold() {
        let est = HighCorrelationEstimator::new();
        let q = Query::new([(TermId(1), 1.0)]);
        // Single term: 30 docs at sim 0.3.
        let u = est.estimate(&repr(), &q, 0.2);
        assert!((u.no_doc - 30.0).abs() < 1e-9);
        assert_eq!(est.estimate(&repr(), &q, 0.3).no_doc, 0.0);
    }

    #[test]
    fn ties_in_df_are_stable() {
        let mk = |p, mean| TermStats {
            p,
            mean,
            std_dev: 0.0,
            max: mean,
        };
        let r = Representative::from_parts(100, vec![mk(0.3, 0.2), mk(0.3, 0.4)], 0);
        let q = Query::new([(TermId(0), 1.0), (TermId(1), 1.0)]);
        // Equal dfs: both in one nested chain; 30 docs have both terms
        // (count for the outer bucket is 0).
        let u = HighCorrelationEstimator::new().estimate(&r, &q, 0.5);
        assert!((u.no_doc - 30.0).abs() < 1e-9);
        assert!((u.avg_sim - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let u = HighCorrelationEstimator::new().estimate(&repr(), &Query::new([]), 0.0);
        assert_eq!(u.no_doc, 0.0);
        let v = DisjointEstimator::new().estimate(&repr(), &Query::new([]), 0.0);
        assert_eq!(v.no_doc, 0.0);
    }
}
