//! The standard normal distribution, implemented from scratch.
//!
//! The subrange method approximates a term's weight distribution as
//! `N(w, sigma^2)` and places each subrange's median weight at
//! `w + z(q) * sigma` where `z = phi_inv` is the standard normal quantile.
//! The paper's Example 3.3 uses `z(0.875) = 1.15`, `z(0.625) = 0.318`; the
//! triplet experiments (Tables 10–12) estimate the maximum normalized weight
//! as the 99.9-percentile `w + z(0.999) * sigma`.

use rand::Rng;

/// `1 / sqrt(2)`.
const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
/// `1 / sqrt(2 * pi)`.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Error function `erf(x)`, accurate to roughly `1.2e-7` absolute error.
///
/// Uses the rational Chebyshev-style approximation of the complementary
/// error function (Numerical Recipes `erfcc`), which is plenty for the
/// quantile refinement below (the quantile itself is computed by Acklam's
/// algorithm and polished with one Halley step).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Horner evaluation of the NR rational approximation.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal probability density function.
pub fn pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function `P(Z <= x)`.
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Upper tail probability `P(Z > x) = 1 - phi(x)`.
pub fn upper_tail(x: f64) -> f64 {
    0.5 * erfc(x * FRAC_1_SQRT_2)
}

/// Standard normal quantile (inverse CDF): the `x` with `phi(x) = p`.
///
/// Acklam's rational approximation (relative error below `1.2e-9`) followed
/// by one Halley refinement step against [`phi`]. Returns `-INFINITY` /
/// `INFINITY` for `p <= 0` / `p >= 1`.
///
/// # Examples
///
/// ```
/// // Example 3.3 of the paper: the median of the top quartile.
/// let z = seu_stats::phi_inv(0.875);
/// assert!((z - 1.1503).abs() < 1e-3);
/// ```
pub fn phi_inv(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x <- x - 2 e / (2 phi'(x) + e x), e = phi(x) - p.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Mean of a normal `N(mu, sigma^2)` truncated to the interval `(c, inf)`:
/// `E[W | W > c] = mu + sigma * pdf(a) / (1 - phi(a))` with
/// `a = (c - mu) / sigma`.
///
/// Returns `mu` when `sigma` is not strictly positive (degenerate
/// distribution) or when the upper tail mass underflows to zero.
pub fn truncated_mean(mu: f64, sigma: f64, c: f64) -> f64 {
    if sigma <= 0.0 {
        return mu;
    }
    let a = (c - mu) / sigma;
    let tail = upper_tail(a);
    if tail <= f64::MIN_POSITIVE {
        // Essentially no mass above c; the conditional mean degenerates to c.
        return c.max(mu);
    }
    mu + sigma * pdf(a) / tail
}

/// Draws one `N(mu, sigma^2)` sample with the Box–Muller transform.
pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    mu + sigma * r * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        // The rational approximation has ~1.2e-7 absolute error.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn phi_is_symmetric_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        for &x in &[0.1, 0.5, 1.0, 1.5, 2.33, 3.0] {
            assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn phi_inv_matches_paper_constants() {
        // Example 3.3: quartile medians of a normal.
        assert!((phi_inv(0.875) - 1.1503).abs() < 1e-3);
        assert!((phi_inv(0.625) - 0.3186).abs() < 1e-3);
        assert!((phi_inv(0.375) + 0.3186).abs() < 1e-3);
        assert!((phi_inv(0.125) + 1.1503).abs() < 1e-3);
        // Section 4 six-subrange medians.
        assert!((phi_inv(0.98) - 2.0537).abs() < 1e-3);
        assert!((phi_inv(0.931) - 1.4833).abs() < 2e-3);
        assert!((phi_inv(0.70) - 0.5244).abs() < 1e-3);
        // Tables 10-12: the 99.9 percentile used to estimate max weights.
        assert!((phi_inv(0.999) - 3.0902).abs() < 1e-3);
    }

    #[test]
    fn phi_inv_is_inverse_of_phi() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-8, "p={p} x={x} phi={}", phi(x));
        }
    }

    #[test]
    fn phi_inv_extremes() {
        assert_eq!(phi_inv(0.0), f64::NEG_INFINITY);
        assert_eq!(phi_inv(1.0), f64::INFINITY);
        assert!(phi_inv(1e-12) < -6.0);
        assert!(phi_inv(1.0 - 1e-12) > 6.0);
    }

    #[test]
    fn truncated_mean_basics() {
        // Truncating far below the mean changes nothing.
        assert!((truncated_mean(2.0, 1.0, -100.0) - 2.0).abs() < 1e-6);
        // Truncating at the mean gives mu + sigma * sqrt(2/pi)... actually
        // E[W | W > mu] = mu + sigma * pdf(0)/0.5 = mu + sigma * 0.7979.
        let m = truncated_mean(2.0, 1.0, 2.0);
        assert!((m - (2.0 + 0.797_884_56)).abs() < 1e-5);
        // Monotone in the cutoff.
        let lo = truncated_mean(0.0, 1.0, 0.0);
        let hi = truncated_mean(0.0, 1.0, 1.0);
        assert!(hi > lo && hi > 1.0);
        // Degenerate sigma.
        assert_eq!(truncated_mean(3.0, 0.0, 10.0), 3.0);
    }

    #[test]
    fn truncated_mean_far_tail_does_not_blow_up() {
        let m = truncated_mean(0.0, 1.0, 40.0);
        assert!(m.is_finite() && m >= 40.0 - 1e-9);
    }

    #[test]
    fn sampler_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = normal_sample(&mut rng, 5.0, 2.0);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.02, "mean={mean}");
        assert!((var - 4.0).abs() < 0.08, "var={var}");
    }
}
