//! One-byte quantization of representative numbers (Section 3.2).
//!
//! To shrink a database representative from 20 to 8 bytes per distinct term,
//! the paper replaces each 4-byte float by one byte: the value range is
//! partitioned into 256 equal-length intervals, the *average of the values
//! falling into each interval* is computed, and each original value is
//! mapped to the average of its interval. Tables 7–9 show this loses
//! essentially nothing.

use serde::{Deserialize, Serialize};

/// The fixed `[0, 1]` range used for probabilities.
pub const UNIT_RANGE: (f64, f64) = (0.0, 1.0);

/// A 256-level scalar quantizer with per-interval reconstruction averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteQuantizer {
    lo: f64,
    hi: f64,
    /// Reconstruction value for each of the 256 codes: the mean of the
    /// training values that fell in the interval, or the interval midpoint
    /// for intervals that received no training value.
    levels: Vec<f64>,
}

impl ByteQuantizer {
    /// Trains a quantizer on `values` over the range they actually span.
    ///
    /// Returns a degenerate (single-level) quantizer if `values` is empty or
    /// spans a single point.
    pub fn train(values: impl IntoIterator<Item = f64> + Clone) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values.clone() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 0.0;
        }
        Self::train_with_range(values, lo, hi)
    }

    /// Trains a quantizer on `values` with a fixed `[lo, hi]` range
    /// (e.g. [`UNIT_RANGE`] for probabilities).
    pub fn train_with_range(values: impl IntoIterator<Item = f64>, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        let width = hi - lo;
        let mut sums = vec![0.0f64; 256];
        let mut counts = vec![0u64; 256];
        if width > 0.0 {
            for v in values {
                let code = Self::code_for(v, lo, width);
                sums[code as usize] += v;
                counts[code as usize] += 1;
            }
        }
        let levels = (0..256)
            .map(|i| {
                if counts[i] > 0 {
                    sums[i] / counts[i] as f64
                } else if width > 0.0 {
                    lo + width * (i as f64 + 0.5) / 256.0
                } else {
                    lo
                }
            })
            .collect();
        ByteQuantizer { lo, hi, levels }
    }

    fn code_for(v: f64, lo: f64, width: f64) -> u8 {
        let t = ((v - lo) / width * 256.0).floor();
        t.clamp(0.0, 255.0) as u8
    }

    /// Encodes a value to its one-byte code. Values outside the trained
    /// range clamp to the extreme codes.
    pub fn encode(&self, v: f64) -> u8 {
        let width = self.hi - self.lo;
        if width <= 0.0 {
            0
        } else {
            Self::code_for(v, self.lo, width)
        }
    }

    /// Decodes a one-byte code back to its reconstruction value.
    pub fn decode(&self, code: u8) -> f64 {
        self.levels[code as usize]
    }

    /// Round-trips a value through the quantizer.
    pub fn quantize(&self, v: f64) -> f64 {
        self.decode(self.encode(v))
    }

    /// The trained range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Worst-case quantization error: half an interval width (the
    /// reconstruction average always lies inside the value's interval).
    pub fn max_error_bound(&self) -> f64 {
        (self.hi - self.lo) / 256.0
    }

    /// Reconstruction levels for all 256 codes, in code order.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The level an *untrained* quantizer over `[lo, hi]` reconstructs
    /// for `code`: the interval midpoint, or `lo` for a degenerate
    /// range. Persistence formats store only the levels that differ
    /// from this default (typically the few intervals that received
    /// training mass), rebuilding the rest at load time.
    pub fn default_level(lo: f64, hi: f64, code: u8) -> f64 {
        let width = hi - lo;
        if width > 0.0 {
            lo + width * (f64::from(code) + 0.5) / 256.0
        } else {
            lo
        }
    }

    /// Reassembles a quantizer from persisted parts. Returns `None`
    /// unless `levels` has exactly 256 entries and `lo <= hi` (which
    /// also rejects NaN bounds), so corrupted inputs cannot build a
    /// quantizer whose `decode` would panic.
    pub fn from_parts(lo: f64, hi: f64, levels: Vec<f64>) -> Option<Self> {
        (levels.len() == 256 && lo <= hi).then_some(ByteQuantizer { lo, hi, levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let q = ByteQuantizer::train(values.iter().copied());
        let bound = q.max_error_bound();
        for &v in &values {
            assert!(
                (q.quantize(v) - v).abs() <= bound + 1e-12,
                "v={v} got {}",
                q.quantize(v)
            );
        }
    }

    #[test]
    fn unit_range_probabilities() {
        let probs = [0.0, 0.1, 0.5, 0.999, 1.0];
        let q = ByteQuantizer::train_with_range(probs.iter().copied(), 0.0, 1.0);
        for &p in &probs {
            let r = q.quantize(p);
            assert!((r - p).abs() <= 1.0 / 256.0, "p={p} r={r}");
            assert!((0.0..=1.0).contains(&r));
        }
        // Out-of-range values clamp rather than panic.
        assert_eq!(q.encode(2.0), 255);
        assert_eq!(q.encode(-1.0), 0);
    }

    #[test]
    fn degenerate_inputs() {
        let q = ByteQuantizer::train(std::iter::empty());
        assert_eq!(q.quantize(5.0), 0.0);
        let q1 = ByteQuantizer::train([3.0, 3.0, 3.0]);
        assert_eq!(q1.quantize(3.0), 3.0);
    }

    #[test]
    fn reconstruction_is_interval_mean_not_midpoint() {
        // All training mass at the low end of the first interval: the
        // reconstruction must follow the data, as in the paper's scheme.
        let vals = [0.0, 0.001, 0.002, 100.0];
        let q = ByteQuantizer::train(vals.iter().copied());
        let first = q.quantize(0.001);
        assert!((first - 0.001).abs() < 0.001, "first={first}");
    }

    #[test]
    fn encode_is_monotone() {
        let vals: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let q = ByteQuantizer::train(vals.iter().copied());
        let mut prev = 0u8;
        for &v in &vals {
            let c = q.encode(v);
            assert!(c >= prev);
            prev = c;
        }
    }
}
