//! Fixed-bin histograms for diagnostics and ablation reporting.

use serde::{Deserialize, Serialize};

/// Equal-width histogram over `[lo, hi)` with values outside the range
/// clamped into the edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len() as f64;
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins).floor();
        let idx = idx.clamp(0.0, bins - 1.0) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Fraction of observations at or above `x` (by whole bins; `x` is
    /// rounded down to its bin edge).
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len() as f64;
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins)
            .floor()
            .clamp(0.0, bins) as usize;
        let above: u64 = self.counts[idx.min(self.counts.len())..].iter().sum();
        above as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.05);
        h.record(0.15);
        h.record(0.95);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn tail_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.record(i as f64 / 10.0 + 0.05);
        }
        assert!((h.fraction_at_or_above(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_at_or_above(0.0), 1.0);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 2.5));
        assert_eq!(h.bin_edges(3), (3.5, 4.0));
    }
}
