//! Exact percentiles of observed data.
//!
//! Used by representative diagnostics (comparing the normal-quantile
//! approximation of subrange medians with the true empirical medians) and by
//! the evaluation harness.

/// Nearest-rank percentile of `sorted` (ascending), `q` in `[0, 1]`.
///
/// The nearest-rank definition: the smallest value such that at least
/// `q * 100` percent of the data is less than or equal to it.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
    if q == 0.0 {
        return sorted[0];
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Linearly interpolated percentile of `sorted` (ascending), `q` in `[0, 1]`.
///
/// Uses the common `(n - 1) * q` interpolation (NumPy's default).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_linear(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_small() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_nearest_rank(&xs, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&xs, 0.25), 1.0);
        assert_eq!(percentile_nearest_rank(&xs, 0.26), 2.0);
        assert_eq!(percentile_nearest_rank(&xs, 0.5), 2.0);
        assert_eq!(percentile_nearest_rank(&xs, 1.0), 4.0);
    }

    #[test]
    fn linear_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile_linear(&xs, 0.5), 5.0);
        assert_eq!(percentile_linear(&xs, 0.0), 0.0);
        assert_eq!(percentile_linear(&xs, 1.0), 10.0);
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(percentile_linear(&ys, 0.5), 2.0);
        assert!((percentile_linear(&ys, 0.75) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        let xs = [42.0];
        assert_eq!(percentile_nearest_rank(&xs, 0.5), 42.0);
        assert_eq!(percentile_linear(&xs, 0.99), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        percentile_linear(&[], 0.5);
    }
}
