//! Statistics substrate for the `seu` workspace.
//!
//! The subrange-based usefulness estimator of Meng et al. (ICDE 1999) leans
//! on a handful of numerical building blocks that this crate provides from
//! scratch:
//!
//! * [`normal`] — the standard normal distribution: `erf`, CDF `phi`,
//!   quantile `phi_inv` (used to place subrange medians at
//!   `w + z(percentile) * sigma`), truncated-normal moments, and a seeded
//!   Box–Muller sampler.
//! * [`moments`] — single-pass (Welford) mean / standard deviation / min /
//!   max accumulation, used when building database representatives.
//! * [`percentile`] — exact percentiles of observed data, used by the
//!   evaluation harness and by representative diagnostics.
//! * [`quantize`] — the one-byte-per-number representative compression of
//!   Section 3.2 of the paper: 256 equal-width intervals, each value mapped
//!   to the mean of its interval.
//! * [`alias`] — Vose's alias method for O(1) discrete sampling, the
//!   backbone of the synthetic corpus generator.
//! * [`histogram`] — fixed-bin histograms for diagnostics and ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod histogram;
pub mod moments;
pub mod normal;
pub mod percentile;
pub mod quantize;

pub use alias::AliasTable;
pub use histogram::Histogram;
pub use moments::Moments;
pub use normal::{erf, normal_sample, phi, phi_inv, truncated_mean, upper_tail};
pub use percentile::{percentile_linear, percentile_nearest_rank};
pub use quantize::{ByteQuantizer, UNIT_RANGE};
