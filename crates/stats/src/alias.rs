//! Vose's alias method for O(1) sampling from a discrete distribution.
//!
//! The synthetic newsgroup corpus draws millions of terms from Zipfian
//! topic vocabularies; the alias method makes each draw constant-time after
//! linear preprocessing.

use rand::Rng;

/// Precomputed alias table over `n` outcomes with given (unnormalized)
/// weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        assert!(
            weights.len() <= u32::MAX as usize,
            "support too large for u32 aliases"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: p_i * n.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w / total * n as f64
            })
            .collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 100_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "f={f}");
        }
    }

    #[test]
    fn skewed_weights() {
        let freq = empirical(&[8.0, 1.0, 1.0], 200_000, 2);
        assert!((freq[0] - 0.8).abs() < 0.01);
        assert!((freq[1] - 0.1).abs() < 0.01);
        assert!((freq[2] - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let freq = empirical(&[1.0, 0.0, 1.0], 50_000, 3);
        assert_eq!(freq[1], 0.0);
    }

    #[test]
    fn singleton() {
        let freq = empirical(&[42.0], 100, 4);
        assert_eq!(freq[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_panics() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
