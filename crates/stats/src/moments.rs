//! Single-pass accumulation of mean, variance, min and max.
//!
//! Building a database representative requires, for every distinct term, the
//! mean `w`, standard deviation `sigma` and maximum `mw` of the normalized
//! weights of the term over the documents containing it. Collections can be
//! large, so these are accumulated in one pass with Welford's numerically
//! stable recurrence.

use serde::{Deserialize, Serialize};

/// Streaming accumulator for count / mean / variance / skewness / min /
/// max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl Default for Moments {
    fn default() -> Self {
        Self::new()
    }
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator (Welford/Pébay update).
    pub fn push(&mut self, x: f64) {
        let n0 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction,
    /// Pébay's pairwise formulas).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m3 += other.m3
            + delta * delta * delta * n1 * n2 * (n1 - n2) / (total * total)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / total;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`m2 / n`); 0 when fewer than one observation.
    ///
    /// The paper's `sigma` is the standard deviation over the documents
    /// containing the term — the full population, not a sample — so the
    /// population form is the right one.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population skewness `m3 / (n * sigma^3)`; 0 for degenerate or
    /// near-constant data.
    ///
    /// The subrange method models per-term weights as normal (skewness
    /// 0); this statistic quantifies how far a real weight distribution
    /// departs from that — the `repro diagnostics` experiment reports its
    /// distribution over the vocabulary.
    pub fn skewness(&self) -> f64 {
        let sd = self.std_dev();
        if self.count == 0 || sd < 1e-12 {
            return 0.0;
        }
        (self.m3 / self.count as f64) / (sd * sd * sd)
    }

    /// Smallest observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
    }

    #[test]
    fn single_value() {
        let m: Moments = [5.0].into_iter().collect();
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.std_dev(), 0.0);
        assert_eq!(m.min(), 5.0);
        assert_eq!(m.max(), 5.0);
    }

    #[test]
    fn matches_paper_example_3_1_term_1() {
        // Term 1 appears with weights 3, 1, 2 -> mean 2.
        let m: Moments = [3.0, 1.0, 2.0].into_iter().collect();
        assert!((m.mean() - 2.0).abs() < 1e-12);
        // Population variance of {3,1,2} = 2/3.
        assert!((m.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq: Moments = xs.iter().copied().collect();
        let mut a: Moments = xs[..37].iter().copied().collect();
        let b: Moments = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn skewness_signs() {
        // Symmetric data: zero skewness.
        let sym: Moments = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert!(sym.skewness().abs() < 1e-12);
        // Right-skewed data: positive.
        let right: Moments = [1.0, 1.0, 1.0, 1.0, 10.0].into_iter().collect();
        assert!(right.skewness() > 1.0, "{}", right.skewness());
        // Left-skewed: negative.
        let left: Moments = [10.0, 10.0, 10.0, 10.0, 1.0].into_iter().collect();
        assert!(left.skewness() < -1.0);
        // Constant data: defined as 0.
        let flat: Moments = [2.0, 2.0, 2.0].into_iter().collect();
        assert_eq!(flat.skewness(), 0.0);
    }

    #[test]
    fn skewness_merge_matches_sequential() {
        let xs: Vec<f64> = (0..200)
            .map(|i| ((i as f64) * 0.7).sin().powi(3) * 4.0 + 1.0)
            .collect();
        let seq: Moments = xs.iter().copied().collect();
        let mut a: Moments = xs[..71].iter().copied().collect();
        let b: Moments = xs[71..].iter().copied().collect();
        a.merge(&b);
        assert!((a.skewness() - seq.skewness()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs: Moments = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = xs;
        a.merge(&Moments::new());
        assert_eq!(a, xs);
        let mut b = Moments::new();
        b.merge(&xs);
        assert_eq!(b, xs);
    }
}
