//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use seu_stats::{
    percentile_linear, percentile_nearest_rank, phi, phi_inv, truncated_mean, AliasTable,
    ByteQuantizer, Moments,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// phi_inv inverts phi across the useful range.
    #[test]
    fn quantile_round_trip(x in -5.5f64..5.5) {
        let p = phi(x);
        let back = phi_inv(p);
        prop_assert!((back - x).abs() < 1e-5, "x={x} back={back}");
    }

    /// phi is a monotone CDF.
    #[test]
    fn phi_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(phi(lo) <= phi(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&phi(a)));
    }

    /// Truncated means sit above both the cutoff and the raw mean.
    #[test]
    fn truncated_mean_dominates(mu in -5.0f64..5.0, sigma in 0.01f64..3.0, c in -10.0f64..10.0) {
        let m = truncated_mean(mu, sigma, c);
        prop_assert!(m >= mu - 1e-9, "m={m} mu={mu}");
        prop_assert!(m >= c - 1e-9 || c < mu, "m={m} c={c}");
        prop_assert!(m.is_finite());
    }

    /// One-byte quantization round-trips within half an interval.
    #[test]
    fn quantizer_error_bound(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let q = ByteQuantizer::train(values.iter().copied());
        let bound = q.max_error_bound();
        for &v in &values {
            prop_assert!((q.quantize(v) - v).abs() <= bound + 1e-9);
        }
    }

    /// Quantizer codes are monotone in the value.
    #[test]
    fn quantizer_monotone(values in prop::collection::vec(-100.0f64..100.0, 2..100)) {
        let q = ByteQuantizer::train(values.iter().copied());
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            prop_assert!(q.encode(w[0]) <= q.encode(w[1]));
        }
    }

    /// Welford moments agree with the naive two-pass computation.
    #[test]
    fn moments_match_naive(values in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        let m: Moments = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((m.mean() - mean).abs() < 1e-8);
        prop_assert!((m.variance() - var).abs() < 1e-7);
        prop_assert_eq!(m.count(), values.len() as u64);
        prop_assert_eq!(m.min(), values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(m.max(), values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any split of the data equals processing it sequentially.
    #[test]
    fn moments_merge_any_split(values in prop::collection::vec(-50.0f64..50.0, 2..100), split in 0usize..100) {
        let cut = split % values.len();
        let seq: Moments = values.iter().copied().collect();
        let mut a: Moments = values[..cut].iter().copied().collect();
        let b: Moments = values[cut..].iter().copied().collect();
        a.merge(&b);
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-7);
        prop_assert!((a.skewness() - seq.skewness()).abs() < 1e-6);
    }

    /// Alias sampling stays in range and only hits positive-weight items.
    #[test]
    fn alias_respects_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        use rand::{rngs::StdRng, SeedableRng};
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight item {i}");
        }
    }

    /// Percentiles are bounded by the data and monotone in q.
    #[test]
    fn percentiles_bounded_and_monotone(values in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let p = percentile_linear(&sorted, q);
            prop_assert!((lo..=hi).contains(&p));
            prop_assert!(p >= prev - 1e-12);
            prev = p;
            let nr = percentile_nearest_rank(&sorted, q);
            prop_assert!((lo..=hi).contains(&nr));
        }
    }
}
