//! End-to-end reproduction checks: the paper's qualitative claims must
//! hold on a reduced version of the full workload.
//!
//! These are the repository's acceptance tests — if a change anywhere in
//! the stack (analyzer, weighting, representative, estimator, runner)
//! breaks one of the paper's findings, this is where it surfaces.

use seu::core::{
    HighCorrelationEstimator, PrevMethodEstimator, SubrangeEstimator, UsefulnessEstimator,
};
use seu::corpus::{paper_datasets, PaperDatasets};
use seu::eval::runner::{evaluate, EvalConfig};
use seu::eval::MethodResult;
use seu::repr::{QuantizedRepresentative, Representative};
use std::sync::OnceLock;

/// The datasets are expensive enough to share across tests.
fn datasets() -> &'static PaperDatasets {
    static DS: OnceLock<PaperDatasets> = OnceLock::new();
    DS.get_or_init(|| {
        let mut ds = paper_datasets(42);
        ds.queries.truncate(1200);
        ds
    })
}

fn config() -> EvalConfig {
    EvalConfig {
        thresholds: vec![0.1, 0.2, 0.3, 0.4],
        threads: 0,
    }
}

fn run_three_methods(collection: &seu::engine::Collection) -> Vec<MethodResult> {
    let ds = datasets();
    let repr = Representative::build(collection);
    let high = HighCorrelationEstimator::new();
    let prev = PrevMethodEstimator::new();
    let sub = SubrangeEstimator::paper_six_subrange();
    evaluate(
        collection,
        &repr,
        &ds.queries,
        &[&high, &prev, &sub],
        &config(),
    )
}

#[test]
fn subrange_beats_prev_beats_high_correlation_on_matches() {
    for collection in [&datasets().d1, &datasets().d2, &datasets().d3] {
        let res = run_three_methods(collection);
        let (high, prev, sub) = (&res[0], &res[1], &res[2]);
        for ti in 0..config().thresholds.len() {
            let u = sub.rows[ti].u;
            if u < 20 {
                continue; // not enough mass at this threshold for ordering
            }
            assert!(
                sub.rows[ti].matches > prev.rows[ti].matches,
                "t={} subrange {} !> prev {}",
                sub.rows[ti].threshold,
                sub.rows[ti].matches,
                prev.rows[ti].matches
            );
            // The prev > high ordering is strict where either method has
            // real match counts; at the sparse tail (both near zero) a
            // single lucky match must not flip the verdict.
            if prev.rows[ti].matches + high.rows[ti].matches >= 10 {
                assert!(
                    prev.rows[ti].matches > high.rows[ti].matches,
                    "t={} prev {} !> high {}",
                    prev.rows[ti].threshold,
                    prev.rows[ti].matches,
                    high.rows[ti].matches
                );
            }
        }
    }
}

#[test]
fn subrange_match_rate_is_high_and_mismatch_low() {
    for collection in [&datasets().d1, &datasets().d3] {
        let res = run_three_methods(collection);
        let sub = &res[2];
        for row in &sub.rows {
            if row.u < 20 {
                continue;
            }
            assert!(
                row.match_rate() > 0.9,
                "t={} match rate {}",
                row.threshold,
                row.match_rate()
            );
            // Mismatches stay a small fraction of the useful queries.
            assert!(
                (row.mismatches as f64) < 0.1 * row.u as f64,
                "t={} mismatches {} vs U {}",
                row.threshold,
                row.mismatches,
                row.u
            );
        }
    }
}

#[test]
fn subrange_d_s_dominates_baselines() {
    let res = run_three_methods(&datasets().d1);
    let (high, prev, sub) = (&res[0], &res[1], &res[2]);
    for ti in 0..config().thresholds.len() {
        if sub.rows[ti].u < 20 {
            continue;
        }
        assert!(sub.rows[ti].d_s() <= prev.rows[ti].d_s() + 1e-9);
        assert!(prev.rows[ti].d_s() < high.rows[ti].d_s());
    }
}

#[test]
fn one_byte_quantization_changes_little() {
    let ds = datasets();
    let sub = SubrangeEstimator::paper_six_subrange();
    let full = Representative::build(&ds.d1);
    let quant = QuantizedRepresentative::from_representative(&full).decode();
    let methods: [&(dyn UsefulnessEstimator + Sync); 1] = [&sub];
    let a = evaluate(&ds.d1, &full, &ds.queries, &methods, &config());
    let b = evaluate(&ds.d1, &quant, &ds.queries, &methods, &config());
    for (ra, rb) in a[0].rows.iter().zip(&b[0].rows) {
        if ra.u < 20 {
            continue;
        }
        let rel = (ra.matches as f64 - rb.matches as f64).abs() / ra.matches.max(1) as f64;
        assert!(
            rel < 0.03,
            "t={}: {} vs {}",
            ra.threshold,
            ra.matches,
            rb.matches
        );
        assert!((ra.d_s() - rb.d_s()).abs() < 0.02);
    }
}

#[test]
fn triplet_representatives_degrade_substantially() {
    let ds = datasets();
    let repr = Representative::build(&ds.d1);
    let quad = SubrangeEstimator::paper_six_subrange();
    let trip = SubrangeEstimator::paper_triplet();
    let methods: [&(dyn UsefulnessEstimator + Sync); 2] = [&quad, &trip];
    let res = evaluate(&ds.d1, &repr, &ds.queries, &methods, &config());
    // At the higher thresholds the stored max is decisive (the paper's
    // Tables 10-12 vs 1-2 comparison).
    let last = res[0].rows.len() - 1;
    let quad_matches = res[0].rows[last].matches;
    let trip_matches = res[1].rows[last].matches;
    assert!(
        (trip_matches as f64) < 0.5 * quad_matches as f64,
        "triplet {trip_matches} vs quadruplet {quad_matches}"
    );
    // And mismatches grow.
    assert!(res[1].rows[0].mismatches > res[0].rows[0].mismatches);
}

#[test]
fn representative_stays_small_relative_to_collection() {
    for collection in [&datasets().d1, &datasets().d2, &datasets().d3] {
        let repr = Representative::build(collection);
        let quantized = repr.size_bytes_quantized();
        assert!(quantized * 2 <= repr.size_bytes_quadruplet() + 8);
        // Even on tiny newsgroup snapshots the representative is far
        // smaller than the collection.
        assert!(repr.size_bytes_quadruplet() < collection.raw_bytes());
    }
}
