//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* collection and query, not just the curated workloads.

use proptest::prelude::*;
use seu::core::{
    BasicEstimator, DisjointEstimator, Expansion, HighCorrelationEstimator, PrevMethodEstimator,
    SubrangeEstimator, UsefulnessEstimator,
};
use seu::engine::{Collection, CollectionBuilder, Query, SearchEngine, WeightingScheme};
use seu::repr::{MaxWeightMode, QuantizedRepresentative, Representative, SubrangeScheme};
use seu::text::Analyzer;

/// Strategy: a small random collection over a closed vocabulary, as token
/// lists (so weights and co-occurrence are arbitrary).
fn arb_collection() -> impl Strategy<Value = Collection> {
    let vocab = prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    ]);
    let doc = prop::collection::vec(vocab, 1..40);
    prop::collection::vec(doc, 1..25).prop_map(|docs| {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, tokens) in docs.iter().enumerate() {
            b.add_tokens(&format!("d{i}"), tokens);
        }
        b.build()
    })
}

/// Strategy: a query over the same vocabulary (some terms may be missing
/// from a particular generated collection — that is part of the point).
fn arb_query_tokens() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec![
            "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
            "unknown",
        ]),
        1..6,
    )
    .prop_map(|v| v.into_iter().map(String::from).collect())
}

fn query_of(c: &Collection, tokens: &[String]) -> Query {
    use std::collections::HashMap;
    let mut tf: HashMap<seu::text::TermId, u32> = HashMap::new();
    for t in tokens {
        if let Some(id) = c.vocab().get(t) {
            *tf.entry(id).or_insert(0) += 1;
        }
    }
    c.query_from_tf(tf)
}

fn all_estimators() -> Vec<Box<dyn UsefulnessEstimator>> {
    vec![
        Box::new(SubrangeEstimator::paper_six_subrange()),
        Box::new(SubrangeEstimator::paper_triplet()),
        Box::new(SubrangeEstimator::new(
            SubrangeScheme::paper_six(),
            MaxWeightMode::Stored,
            Expansion::Grid { cells: 512 },
        )),
        Box::new(BasicEstimator::new()),
        Box::new(PrevMethodEstimator::new()),
        Box::new(HighCorrelationEstimator::new()),
        Box::new(DisjointEstimator::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimated NoDoc is always within [0, n] and AvgSim within [0, ~1].
    #[test]
    fn estimates_are_bounded(c in arb_collection(), toks in arb_query_tokens(), t in 0.0f64..1.0) {
        let repr = Representative::build(&c);
        let q = query_of(&c, &toks);
        for est in all_estimators() {
            let u = est.estimate(&repr, &q, t);
            prop_assert!(u.no_doc >= 0.0, "{}: {}", est.name(), u.no_doc);
            prop_assert!(u.no_doc <= c.len() as f64 + 1e-6, "{}: {}", est.name(), u.no_doc);
            prop_assert!(u.avg_sim >= 0.0);
            // AvgSim of the tail always exceeds the threshold when nonzero.
            if u.no_doc > 0.0 {
                prop_assert!(u.avg_sim > t - 1e-9, "{}: avg {} at t {}", est.name(), u.avg_sim, t);
            }
        }
    }

    /// Estimated NoDoc is monotone non-increasing in the threshold.
    #[test]
    fn no_doc_monotone_in_threshold(c in arb_collection(), toks in arb_query_tokens()) {
        let repr = Representative::build(&c);
        let q = query_of(&c, &toks);
        for est in all_estimators() {
            let mut prev = f64::INFINITY;
            for i in 0..=10 {
                let t = i as f64 / 10.0;
                let u = est.estimate(&repr, &q, t);
                prop_assert!(u.no_doc <= prev + 1e-9, "{} at t={t}", est.name());
                prev = u.no_doc;
            }
        }
    }

    /// `estimate_sweep` agrees with repeated `estimate` calls.
    #[test]
    fn sweep_matches_pointwise(c in arb_collection(), toks in arb_query_tokens()) {
        let repr = Representative::build(&c);
        let q = query_of(&c, &toks);
        let thresholds = [0.05, 0.2, 0.45, 0.7];
        for est in all_estimators() {
            let sweep = est.estimate_sweep(&repr, &q, &thresholds);
            for (i, &t) in thresholds.iter().enumerate() {
                let single = est.estimate(&repr, &q, t);
                prop_assert!((sweep[i].no_doc - single.no_doc).abs() < 1e-9, "{}", est.name());
                prop_assert!((sweep[i].avg_sim - single.avg_sim).abs() < 1e-9, "{}", est.name());
            }
        }
    }

    /// The single-term guarantee on arbitrary collections: with stored max
    /// weights, a single-term query selects a database iff its max
    /// normalized weight for the term exceeds the threshold — which also
    /// means selection agrees exactly with ground truth.
    #[test]
    fn single_term_guarantee(c in arb_collection(), t in 0.01f64..0.99) {
        let repr = Representative::build(&c);
        let engine = SearchEngine::new(c.clone());
        let est = SubrangeEstimator::paper_six_subrange();
        for (term, _) in c.vocab().iter() {
            let q = Query::new([(term, 1.0)]);
            let predicted_useful = est.estimate(&repr, &q, t).no_doc > 0.0;
            let truly_useful = engine.true_usefulness(&q, t).no_doc >= 1;
            prop_assert_eq!(
                predicted_useful, truly_useful,
                "term {:?} t {}", c.vocab().term(term), t
            );
        }
    }

    /// The grid expansion never exceeds the exact expansion's NoDoc and
    /// stays close at reasonable resolution.
    #[test]
    fn grid_is_conservative(c in arb_collection(), toks in arb_query_tokens(), t in 0.0f64..0.9) {
        let repr = Representative::build(&c);
        let q = query_of(&c, &toks);
        let exact = SubrangeEstimator::paper_six_subrange();
        let grid = SubrangeEstimator::new(
            SubrangeScheme::paper_six(),
            MaxWeightMode::Stored,
            Expansion::Grid { cells: 2048 },
        );
        let a = exact.estimate(&repr, &q, t);
        let b = grid.estimate(&repr, &q, t);
        prop_assert!(b.no_doc <= a.no_doc + 1e-9);
    }

    /// Quantization moves every estimate by at most a small amount — in
    /// the sandwich sense: the quantized NoDoc at threshold `t` lies
    /// between the full-precision NoDoc at `t + delta` and `t - delta`
    /// (weight codes move exponents by at most `delta`), plus a small
    /// probability-perturbation slack. A pointwise bound would be wrong:
    /// an exponent sitting exactly on the threshold can jump the tail
    /// mass discontinuously.
    #[test]
    fn quantization_is_gentle(c in arb_collection(), toks in arb_query_tokens(), t in 0.0f64..0.9) {
        let full = Representative::build(&c);
        let quant = QuantizedRepresentative::from_representative(&full).decode();
        let q = query_of(&c, &toks);
        let est = BasicEstimator::new();
        let b = est.estimate(&quant, &q, t);
        // Weights live in [0, 1]: each code moves a weight by < 1/256;
        // a query has < 6 terms with weights summing below sqrt(6).
        let delta = 6.0 / 256.0;
        // Each of < 6 probabilities moves by < 1/256.
        let slack = 6.0 / 256.0 * c.len() as f64 + 1e-6;
        let hi = est.estimate(&full, &q, (t - delta).max(0.0)).no_doc + slack;
        let lo = est.estimate(&full, &q, t + delta).no_doc - slack;
        prop_assert!(b.no_doc <= hi, "{} > {}", b.no_doc, hi);
        prop_assert!(b.no_doc >= lo, "{} < {}", b.no_doc, lo);
    }

    /// The subrange estimator with a single subrange reduces to the basic
    /// method.
    #[test]
    fn single_subrange_is_basic(c in arb_collection(), toks in arb_query_tokens(), t in 0.0f64..0.9) {
        let repr = Representative::build(&c);
        let q = query_of(&c, &toks);
        let sub = SubrangeEstimator::new(
            SubrangeScheme::single(),
            MaxWeightMode::Stored,
            Expansion::Exact,
        );
        let a = sub.estimate(&repr, &q, t);
        let b = BasicEstimator::new().estimate(&repr, &q, t);
        // z(0.5) differs from 0 only by the quantile approximation error,
        // and the median weight is clamped to [0, max].
        prop_assert!((a.no_doc - b.no_doc).abs() < 0.05 * c.len() as f64 + 1e-6);
    }

    /// Representatives survive serialization within f32 precision, no
    /// matter the collection.
    #[test]
    fn representative_round_trips(c in arb_collection()) {
        let repr = Representative::build(&c);
        let back = Representative::from_bytes(repr.to_bytes()).expect("valid");
        prop_assert_eq!(back.n_docs(), repr.n_docs());
        prop_assert_eq!(back.distinct_terms(), repr.distinct_terms());
        for (term, s) in repr.iter() {
            let s2 = back.get(term).expect("present");
            prop_assert!((s.p - s2.p).abs() < 1e-6);
            prop_assert!((s.max - s2.max).abs() < 1e-6);
        }
    }

    /// True usefulness is consistent with threshold search.
    #[test]
    fn truth_matches_search(c in arb_collection(), toks in arb_query_tokens(), t in 0.0f64..1.0) {
        let engine = SearchEngine::new(c.clone());
        let q = query_of(&c, &toks);
        let truth = engine.true_usefulness(&q, t);
        let hits = engine.search_threshold(&q, t);
        prop_assert_eq!(truth.no_doc, hits.len() as u64);
        if !hits.is_empty() {
            let mean = hits.iter().map(|h| h.sim).sum::<f64>() / hits.len() as f64;
            prop_assert!((truth.avg_sim - mean).abs() < 1e-9);
            prop_assert!((truth.max_sim - hits[0].sim).abs() < 1e-12);
        }
    }
}
