//! Integration tests for the multi-level broker and document allocation
//! on the synthetic paper workload.

use seu::corpus::queries::query_text;
use seu::corpus::{many_databases, paper_datasets};
use seu::metasearch::{Broker, SuperBroker};
use seu::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn flat_broker() -> &'static Broker<SubrangeEstimator> {
    static B: OnceLock<Broker<SubrangeEstimator>> = OnceLock::new();
    B.get_or_init(|| {
        let ds = paper_datasets(17);
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register("D1", SearchEngine::new(ds.d1));
        b.register("D2", SearchEngine::new(ds.d2));
        b.register("D3", SearchEngine::new(ds.d3));
        b
    })
}

#[test]
fn allocation_respects_truth_at_scale() {
    let broker = flat_broker();
    let ds = paper_datasets(17);
    for tokens in ds.queries.iter().take(60).filter(|q| q.len() >= 2) {
        let text = query_text(tokens);
        let k = 10;
        let alloc = broker.allocate_documents(&text, k);
        let total: u64 = alloc.iter().map(|a| a.k).sum();
        assert!(total <= k, "{text}: over-allocated {total}");
        // Engines allocated documents must be estimated useful at some
        // level — they must at least contain a query term.
        for a in &alloc {
            if a.k > 0 {
                assert!(a.estimated > 0.0, "{text}: {a:?}");
            }
        }
    }
}

#[test]
fn allocation_fills_budget_when_documents_exist() {
    let broker = flat_broker();
    // A background term reaches all databases.
    let alloc = broker.allocate_documents("bg3 bg8", 30);
    let total: u64 = alloc.iter().map(|a| a.k).sum();
    assert!(total >= 25, "{alloc:?}");
}

#[test]
fn two_level_routing_matches_flat_selection_mostly() {
    let dbs = many_databases(29, 150);
    let n = dbs.len();
    let flat = Broker::new(SubrangeEstimator::paper_six_subrange());
    let superb = SuperBroker::new(SubrangeEstimator::paper_six_subrange());
    let groups: Vec<Broker<SubrangeEstimator>> = (0..6)
        .map(|_| Broker::new(SubrangeEstimator::paper_six_subrange()))
        .collect();
    for (i, (name, coll)) in dbs.into_iter().enumerate() {
        flat.register(&name, SearchEngine::new(coll.clone()));
        groups[i * 6 / n].register(&name, SearchEngine::new(coll));
    }
    for (g, broker) in groups.into_iter().enumerate() {
        superb.register_broker(&format!("g{g}"), Arc::new(broker));
    }

    let corpus = seu::corpus::SyntheticCorpus::standard();
    let queries = corpus.generate_query_log(&QueryLogSpec {
        n_queries: 120,
        single_term_fraction: 0.3,
        max_terms: 5,
        on_topic_prob: 0.7,
        seed: 31,
    });

    let mut flat_hits = 0usize;
    let mut two_hits = 0usize;
    for tokens in &queries {
        let text = query_text(tokens);
        let f = flat.search(&text, 0.2, SelectionPolicy::EstimatedUseful);
        let t = superb.search(&text, 0.2, SelectionPolicy::EstimatedUseful);
        flat_hits += f.len();
        two_hits += t.len();
        // Every two-level hit exists in the flat result (same engines,
        // same threshold; only the engine label gains a region prefix).
        for h in &t {
            let suffix = h.engine.split('/').next_back().unwrap();
            assert!(
                f.iter().any(|fh| fh.engine == suffix
                    && fh.doc == h.doc
                    && (fh.sim - h.sim).abs() < 1e-12),
                "{text}: {h:?} missing from flat results"
            );
        }
    }
    assert!(flat_hits > 0);
    // The hierarchy loses only a small fraction of hits to group-summary
    // blurring.
    assert!(
        two_hits as f64 >= 0.9 * flat_hits as f64,
        "{two_hits} vs {flat_hits}"
    );
}
