//! Broker integration: representatives crossing a (simulated) network
//! boundary, quantized registration, policy behaviour, and agreement
//! between selective search and broadcast search.

use seu::corpus::queries::query_text;
use seu::metasearch::Broker;
use seu::prelude::*;
use seu::repr::QuantizedRepresentative;

fn three_engine_broker() -> Broker<SubrangeEstimator> {
    let ds = seu::corpus::paper_datasets(7);
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());

    // D1 registers normally; D2 ships its representative as bytes; D3
    // ships a one-byte-quantized representative.
    broker.register("D1", SearchEngine::new(ds.d1.clone()));

    let r2 = Representative::build(&ds.d2);
    let shipped = r2.to_bytes();
    let received = Representative::from_bytes(shipped).expect("intact");
    broker.register_with_representative("D2", SearchEngine::new(ds.d2.clone()), received);

    let r3 = QuantizedRepresentative::from_representative(&Representative::build(&ds.d3));
    broker.register_with_representative("D3", SearchEngine::new(ds.d3.clone()), r3.decode());

    broker
}

#[test]
fn selective_search_finds_what_broadcast_finds() {
    let broker = three_engine_broker();
    let ds = seu::corpus::paper_datasets(7);
    let mut total_hits = 0usize;
    let mut lost = 0usize;
    for tokens in ds.queries.iter().take(150) {
        let text = query_text(tokens);
        let all = broker.search(&text, 0.2, SelectionPolicy::All);
        let selected = broker.search(&text, 0.2, SelectionPolicy::EstimatedUseful);
        total_hits += all.len();
        // Selective search may only lose hits from unselected engines.
        for h in &all {
            if !selected.contains(h) {
                lost += 1;
            }
        }
        // And must never invent hits.
        for h in &selected {
            assert!(all.contains(h), "invented hit {h:?}");
        }
    }
    // The estimator's misses cost at most a small fraction of all hits.
    assert!(
        (lost as f64) < 0.05 * total_hits.max(1) as f64,
        "lost {lost} of {total_hits}"
    );
}

#[test]
fn policies_are_consistent() {
    let broker = three_engine_broker();
    let query = "tp0x120 tp0x37";
    let useful = broker.select(query, 0.1, SelectionPolicy::EstimatedUseful);
    let top1 = broker.select(query, 0.1, SelectionPolicy::TopK(1));
    let all = broker.select(query, 0.1, SelectionPolicy::All);
    assert_eq!(all.len(), 3);
    assert!(useful.len() <= all.len());
    assert_eq!(top1.len(), 1);
    if !useful.is_empty() {
        // The top-1 engine must be one of the useful ones.
        assert!(useful.contains(&top1[0]));
    }
}

#[test]
fn estimates_are_reported_for_every_engine() {
    let broker = three_engine_broker();
    let est = broker.estimate_all("bg100 bg200", 0.1);
    assert_eq!(est.len(), 3);
    let names: Vec<&str> = est.iter().map(|e| e.engine.as_str()).collect();
    assert_eq!(names, ["D1", "D2", "D3"]);
}

#[test]
fn quantized_registration_still_selects_sensibly() {
    let broker = three_engine_broker();
    let ds = seu::corpus::paper_datasets(7);
    // D3 spans topics 27..53; strongly topical D3 queries should select
    // D3 and not D1/D2 (topics 0..3).
    fn topic_of(term: &str) -> Option<usize> {
        term.strip_prefix("tp")?.split('x').next()?.parse().ok()
    }
    let mut d3_selected = 0;
    let mut agree = 0;
    let mut queries_tried = 0;
    for tokens in ds.queries.iter().filter(|q| {
        q.len() >= 2
            && q.iter()
                .all(|t| topic_of(t).is_some_and(|k| (27..53).contains(&k)))
    }) {
        let text = query_text(tokens);
        let sel = broker.select(&text, 0.1, SelectionPolicy::EstimatedUseful);
        let oracle = broker.oracle_select(&text, 0.1);
        queries_tried += 1;
        if sel.contains(&"D3".to_string()) {
            d3_selected += 1;
        }
        if sel == oracle {
            agree += 1;
        }
        // D3-only topical terms cannot appear in D1 (topic 0) or D2
        // (topics 1-2), so neither may ever be selected.
        assert!(!sel.contains(&"D1".to_string()), "{text}");
        assert!(!sel.contains(&"D2".to_string()), "{text}");
    }
    assert!(
        queries_tried > 10,
        "workload should contain D3-topical queries"
    );
    // Selection through a quantized representative still agrees with the
    // oracle almost always, and D3 does get selected when warranted.
    assert!(
        agree * 10 >= queries_tried * 9,
        "oracle agreement {agree}/{queries_tried}"
    );
    assert!(d3_selected > 0);
}
