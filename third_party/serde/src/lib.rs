//! Offline stand-in for `serde`.
//!
//! The crates-io registry is unreachable in this environment, and nothing
//! in the workspace actually serializes through serde (binary persistence
//! is hand-rolled, JSON lives in `seu-obs`). This crate keeps the
//! `#[derive(Serialize, Deserialize)]` annotations compiling so the real
//! serde can be dropped back in without touching any annotated type.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
