//! The case runner: deterministic seeding, reject handling, failure
//! reporting with the generated inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only the field the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// `prop_assume!` filtered the inputs out.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// FNV-1a, for deriving a stable per-test seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one property: `case` generates inputs from the given RNG and
/// returns `(inputs-description, outcome)`. Panics on the first failing
/// case, reporting the inputs and the case seed.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    let base_seed = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(10).max(1000);
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected} after {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed at case #{index} (seed {seed:#x}):\n  \
                     {msg}\n  inputs: {inputs}"
                );
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run_property(&ProptestConfig::with_cases(17), "counting", |_| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run_property(&ProptestConfig::with_cases(5), "failing", |_| {
            (String::from("x = 1"), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    fn rejects_do_not_count_as_passes() {
        let mut attempts = 0;
        run_property(&ProptestConfig::with_cases(4), "rejecting", |_| {
            attempts += 1;
            if attempts % 2 == 0 {
                (String::new(), Err(TestCaseError::Reject))
            } else {
                (String::new(), Ok(()))
            }
        });
        assert!(attempts >= 7, "{attempts}");
    }

    #[test]
    fn seeds_differ_across_cases_but_not_runs() {
        let mut first: Vec<u64> = Vec::new();
        run_property(&ProptestConfig::with_cases(5), "seeds", |rng| {
            first.push(rand::Rng::gen::<u64>(rng));
            (String::new(), Ok(()))
        });
        let mut second: Vec<u64> = Vec::new();
        run_property(&ProptestConfig::with_cases(5), "seeds", |rng| {
            second.push(rand::Rng::gen::<u64>(rng));
            (String::new(), Ok(()))
        });
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
