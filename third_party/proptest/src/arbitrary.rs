//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// That canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty => $name:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;

            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

arbitrary_full_range_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_yields_both() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = any::<bool>();
        let mut t = false;
        let mut f = false;
        for _ in 0..50 {
            if s.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
