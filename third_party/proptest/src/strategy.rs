//! The `Strategy` trait and the primitive strategies: numeric ranges,
//! tuples, regex-like string patterns, and `prop_map`.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// The character class of a string pattern.
enum CharClass {
    /// `.` — any character (printable ASCII plus a sprinkling of
    /// whitespace and multi-byte unicode, mirroring proptest's habit of
    /// feeding tokenizers surprising input).
    Any,
    /// `[...]` — inclusive ranges and singletons.
    Set(Vec<(char, char)>),
}

impl CharClass {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            CharClass::Any => {
                const EXOTIC: &[char] = &[
                    '\t', '\n', 'é', 'ß', 'ø', 'λ', 'Ж', '中', '文', '🦀', '—', '…', '\u{a0}',
                ];
                if rng.gen_bool(0.12) {
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                } else {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
                }
            }
            CharClass::Set(ranges) => {
                // Weight ranges by size for uniformity over the class.
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for &(a, b) in ranges {
                    let span = b as u32 - a as u32 + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick).expect("valid char range");
                    }
                    pick -= span;
                }
                unreachable!("pick within total")
            }
        }
    }
}

/// Parses the regex subset used by the tests: a single `.` or `[...]`
/// class followed by a `{lo,hi}` repetition.
fn parse_pattern(pattern: &str) -> (CharClass, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "string strategy {pattern:?} is not in the supported subset \
             (one `.` or `[...]` class followed by {{lo,hi}})"
        )
    };
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (CharClass::Any, rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let Some(end) = body.find(']') else {
            unsupported()
        };
        let mut ranges = Vec::new();
        let chars: Vec<char> = body[..end].chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            unsupported();
        }
        (CharClass::Set(ranges), &body[end + 1..])
    } else {
        unsupported()
    };
    let Some(rep) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported()
    };
    let (lo, hi) = match rep.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse(), hi.trim().parse()),
        None => (rep.trim().parse(), rep.trim().parse()),
    };
    match (lo, hi) {
        (Ok(lo), Ok(hi)) if lo <= hi => (class, lo, hi),
        _ => unsupported(),
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (class, lo, hi) = parse_pattern(self);
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&x));
            let f = (-1.0f64..1.0).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut r = rng();
        let s = (0.0f64..1.0, 1usize..4).prop_map(|(p, n)| vec![p; n]);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }
    }

    #[test]
    fn char_class_pattern() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z0-9]{1,20}".generate(&mut r);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        let s = "[a-zA-Z ]{0,120}".generate(&mut r);
        assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
    }

    #[test]
    fn dot_pattern_length_bounds() {
        let mut r = rng();
        for _ in 0..50 {
            let s = ".{0,200}".generate(&mut r);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    #[should_panic(expected = "not in the supported subset")]
    fn unsupported_pattern_panics() {
        "(a|b)+".generate(&mut rng());
    }
}
