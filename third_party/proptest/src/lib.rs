//! Offline stand-in for `proptest`, implementing the subset of its API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * [`Strategy`](strategy::Strategy) for numeric ranges, tuples, regex-like
//!   string patterns, `prop::collection::vec`, `prop::sample::select`,
//!   `any::<bool>()`, and `.prop_map`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! No shrinking: a failing case panics with the generated inputs (and the
//! case seed) so it can be reproduced. Cases are generated from a seed
//! derived deterministically from the test name and case index, so runs
//! are stable across machines and invocations.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub use arbitrary::any;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_property(
                    &__config,
                    stringify!($name),
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        let __inputs = {
                            let mut __s = ::std::string::String::new();
                            $(
                                __s.push_str(concat!(stringify!($arg), " = "));
                                __s.push_str(&::std::format!("{:?}, ", $arg));
                            )+
                            __s
                        };
                        let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        (__inputs, __outcome)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
