//! `prop::sample` — uniform selection from a fixed list.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy yielding clones of elements of a fixed vector.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Selects uniformly from `options` (which must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_all_options() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
