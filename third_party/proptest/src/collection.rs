//! `prop::collection` — the `vec` strategy.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0u32..10, 2..6);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[2] && seen[5]);
    }

    #[test]
    fn nested_vectors() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = vec(vec(0u32..3, 1..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|inner| (1..3).contains(&inner.len())));
    }
}
