//! Offline stand-in for the `crossbeam::scope` API, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from real crossbeam are intentional simplifications: a
//! panicking child thread propagates on `join()` exactly as with std, and
//! the outer `scope()` call always returns `Ok`, which matches how every
//! call site (`.expect(...)`) consumes it.

pub mod thread {
    use std::thread as std_thread;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (call sites here ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
