//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId::from_parameter`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is real but
//! deliberately cheap: a short warm-up, then `sample_size` samples of
//! auto-scaled iteration batches, reporting min/median/max ns per
//! iteration. No plots, no regression statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark (split across samples).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; filters and flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one parameterisation of a grouped benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch(iters: u64, f: &mut impl FnMut(&mut Bencher)) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm up and discover how many iterations fit in one sample.
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    let mut per_iter = loop {
        let elapsed = time_batch(iters, &mut f);
        if warmup_start.elapsed() >= WARMUP_BUDGET || elapsed >= WARMUP_BUDGET / 4 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let sample_budget = MEASURE_BUDGET.as_secs_f64() / sample_size as f64;
    let iters_per_sample = ((sample_budget / per_iter) as u64).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_batch(iters_per_sample, &mut f).as_secs_f64() / iters_per_sample as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];

    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>10}/s", human_bytes(n as f64 / median))
        }
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3e} elem/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!(
        "{name:<48} time: [{} {} {}]{extra}",
        human_time(min),
        human_time(median),
        human_time(max),
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_bytes(bps: f64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB"];
    let mut v = bps;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Binds a group name to a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { sample_size: 2 };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_passes_input() {
        let mut c = Criterion { sample_size: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(128));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn humanized_units() {
        assert!(human_time(5e-9).ends_with("ns"));
        assert!(human_time(5e-6).ends_with("µs"));
        assert!(human_time(5e-3).ends_with("ms"));
        assert!(human_time(5.0).ends_with('s'));
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
    }
}
