//! Offline stand-in for the parts of `rand` 0.8 the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but every in-tree consumer
//! either asserts distributional properties with tolerances or only needs
//! determinism under a fixed seed, both of which any high-quality PRNG
//! satisfies.

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from an Rng (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range a uniform value can be drawn from (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step — bias is < 2^-32 for the bounds used in
/// tests).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k draws.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
