//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `read()` / `write()` / `lock()` API the
//! workspace uses. A poisoned std lock (a panic while held) is recovered
//! by taking the inner guard, matching parking_lot's behavior of not
//! propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
