//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` declaratively —
//! nothing in-tree calls serde's runtime (persistence is hand-rolled
//! binary, and JSON emission lives in `seu-obs`). These derives therefore
//! expand to nothing: the types stay annotated, and swapping the real
//! serde back in (when a registry is reachable) needs only a Cargo.toml
//! change.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
