//! Offline stand-in for the `bytes` crate, covering the subset the
//! workspace's hand-rolled binary formats use: `BytesMut` as an append
//! buffer, `Bytes` as an immutable byte container, and the `Buf` /
//! `BufMut` cursor traits. All multi-byte integers are big-endian,
//! matching the real crate's `put_u32` / `get_u32` defaults, so existing
//! wire formats keep their layout.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read cursor (advanced by `Buf` reads on an owned `Bytes`).
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a vector without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Reads panic if fewer than the
/// requested bytes remain, exactly like the real crate — callers are
/// expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} remaining, {} requested",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_u64(), 1 << 40);
        assert_eq!(b.get_f32(), 1.5);
        assert_eq!(b.get_f64(), -2.25);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 0, 0, 0, 2];
        let mut s = &data[..];
        assert_eq!(s.get_u32(), 1 << 24);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 2);
    }

    #[test]
    fn bytes_deref_and_slicing() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abcdef");
        let b = buf.freeze();
        assert_eq!(&b[..3], b"abc");
        assert_eq!(b.len(), 6);
    }
}
